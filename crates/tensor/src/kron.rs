//! Kronecker products and the vec-trick identities of §II-C.
//!
//! K-FAC approximates each layer's Fisher block as `F̂ᵢ = A_{i−1} ⊗ Gᵢ`
//! (Eq. 5) and never materializes the product: preconditioning uses
//! `(A ⊗ B) vec(X) = vec(A X Bᵀ)` (row-major vec; the paper's Eq. 10 is the
//! same identity in its convention). These helpers materialize the product
//! and the identity explicitly so the fast paths in the `kfac` crate can be
//! property-tested against dense ground truth, exactly as the paper verifies
//! its update rule algebraically.

use crate::Matrix;

/// Dense Kronecker product `A ⊗ B` (Eq. 6).
///
/// For `A : m×n` and `B : p×q` the result is `(mp)×(nq)`; entry
/// `((i·p+k), (j·q+l)) = A[i,j] · B[k,l]`.
pub fn kron(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, n) = a.shape();
    let (p, q) = b.shape();
    let mut out = Matrix::zeros(m * p, n * q);
    for i in 0..m {
        for j in 0..n {
            let aij = a[(i, j)];
            if aij == 0.0 {
                continue;
            }
            for k in 0..p {
                let brow = b.row(k);
                let orow = out.row_mut(i * p + k);
                for (l, &bkl) in brow.iter().enumerate() {
                    orow[j * q + l] = aij * bkl;
                }
            }
        }
    }
    out
}

/// Row-major vectorization `vec(X)`: rows of `X` concatenated.
pub fn vec_rowmajor(x: &Matrix) -> Vec<f32> {
    x.as_slice().to_vec()
}

/// Inverse of [`vec_rowmajor`].
pub fn unvec_rowmajor(rows: usize, cols: usize, v: &[f32]) -> Matrix {
    Matrix::from_vec(rows, cols, v.to_vec())
}

/// Apply `(A ⊗ B)` to `vec(X)` *without* materializing the Kronecker
/// product, via the identity `(A ⊗ B) vec(X) = vec(A X Bᵀ)` (row-major
/// vec). `X` must be `A.cols() × B.cols()`.
///
/// This is the trick that makes K-FAC preconditioning cost two small GEMMs
/// instead of one gigantic matvec (Eq. 10).
pub fn kron_matvec(a: &Matrix, b: &Matrix, x: &Matrix) -> Matrix {
    assert_eq!(x.rows(), a.cols(), "kron_matvec: X rows must equal A cols");
    assert_eq!(x.cols(), b.cols(), "kron_matvec: X cols must equal B cols");
    a.matmul(&x.matmul_nt(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn random(rows: usize, cols: usize, rng: &mut Rng64) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.normal_f32()).collect(),
        )
    }

    #[test]
    fn paper_example_eq7() {
        // The worked example in Eq. 7 of the paper.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 0.0]]);
        let k = kron(&a, &b);
        assert_eq!(k.shape(), (6, 4));
        let expect = Matrix::from_rows(&[
            &[5.0, 6.0, 10.0, 12.0],
            &[7.0, 8.0, 14.0, 16.0],
            &[9.0, 0.0, 18.0, 0.0],
            &[15.0, 18.0, 20.0, 24.0],
            &[21.0, 24.0, 28.0, 32.0],
            &[27.0, 0.0, 36.0, 0.0],
        ]);
        assert_eq!(k, expect);
    }

    #[test]
    fn kron_with_identity() {
        let mut rng = Rng64::new(41);
        let a = random(3, 3, &mut rng);
        let k = kron(&Matrix::identity(2), &a);
        // Block diagonal with two copies of a.
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(k[(i, j)], a[(i, j)]);
                assert_eq!(k[(3 + i, 3 + j)], a[(i, j)]);
                assert_eq!(k[(i, 3 + j)], 0.0);
            }
        }
    }

    #[test]
    fn vec_trick_matches_dense_kron() {
        let mut rng = Rng64::new(42);
        let a = random(3, 4, &mut rng);
        let b = random(2, 5, &mut rng);
        let x = random(4, 5, &mut rng);
        let fast = kron_matvec(&a, &b, &x);
        let dense = kron(&a, &b).matvec(&vec_rowmajor(&x));
        let fast_vec = vec_rowmajor(&fast);
        assert_eq!(fast.shape(), (3, 2));
        for (f, d) in fast_vec.iter().zip(&dense) {
            assert!((f - d).abs() < 1e-4, "{} vs {}", f, d);
        }
    }

    #[test]
    fn kron_inverse_identity_eq8() {
        // (A ⊗ B)⁻¹ = A⁻¹ ⊗ B⁻¹ (Eq. 8), checked densely.
        let mut rng = Rng64::new(43);
        let mut a = random(3, 3, &mut rng);
        a.add_diag(3.0);
        let mut b = random(2, 2, &mut rng);
        b.add_diag(2.0);
        let lhs = crate::inverse::invert(&kron(&a, &b)).unwrap();
        let rhs = kron(
            &crate::inverse::invert(&a).unwrap(),
            &crate::inverse::invert(&b).unwrap(),
        );
        assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let mut rng = Rng64::new(44);
        let a = random(2, 3, &mut rng);
        let b = random(2, 2, &mut rng);
        let c = random(3, 2, &mut rng);
        let d = random(2, 3, &mut rng);
        let lhs = kron(&a, &b).matmul(&kron(&c, &d));
        let rhs = kron(&a.matmul(&c), &b.matmul(&d));
        assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn unvec_round_trip() {
        let mut rng = Rng64::new(45);
        let x = random(4, 6, &mut rng);
        let v = vec_rowmajor(&x);
        assert_eq!(unvec_rowmajor(4, 6, &v), x);
    }
}
