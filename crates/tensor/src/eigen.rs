//! Symmetric eigendecomposition via cyclic Jacobi sweeps.
//!
//! The paper's optimized preconditioner never inverts the Kronecker factors
//! explicitly; it eigendecomposes them (`A = Q_A Λ_A Q_Aᵀ`,
//! `G = Q_G Λ_G Q_Gᵀ`) and applies Equations 13–15. On the authors'
//! platform this is `torch.symeig` on a V100; here it is a from-scratch
//! cyclic Jacobi solver.
//!
//! Jacobi was chosen over tridiagonalization+QL because (a) it is simple to
//! make robust, (b) it is embarrassingly accurate for the symmetric
//! positive-semidefinite matrices K-FAC produces (relative eigenvalue error
//! near machine epsilon), and (c) factor dimensions in this reproduction are
//! a few hundred at most, where Jacobi's ~`10 n³` cost is acceptable and its
//! cost curve still exhibits the cubic growth the paper's scaling analysis
//! (Table V, Fig. 10) depends on.
//!
//! The solver works on an `f64` copy for numerical headroom and rounds the
//! results to `f32`.

use crate::{arena, LinAlgError, Matrix};

/// Result of [`eigh`]: `A ≈ Q · diag(λ) · Qᵀ` with orthonormal columns in `Q`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f32>,
    /// Orthonormal eigenvectors; column `j` pairs with `eigenvalues[j]`.
    pub eigenvectors: Matrix,
}

impl EigenDecomposition {
    /// Reconstruct `Q · diag(λ) · Qᵀ` (test/diagnostic helper).
    pub fn reconstruct(&self) -> Matrix {
        let q = &self.eigenvectors;
        let n = q.rows();
        let mut scaled = q.clone(); // scaled[:, j] = λ_j q[:, j]
        for i in 0..n {
            let row = scaled.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v *= self.eigenvalues[j];
            }
        }
        scaled.matmul_nt(q)
    }

    /// Serialize as `[eigenvalues..., eigenvectors row-major...]`.
    ///
    /// This is the wire format the distributed K-FAC step allgathers in
    /// Algorithm 1 line 18.
    pub fn to_bytes_f32(&self) -> Vec<f32> {
        let n = self.eigenvalues.len();
        let mut out = Vec::with_capacity(n + n * n);
        out.extend_from_slice(&self.eigenvalues);
        out.extend_from_slice(self.eigenvectors.as_slice());
        out
    }

    /// Inverse of [`to_bytes_f32`]; `n` is the factor dimension.
    pub fn from_bytes_f32(n: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), n + n * n, "eigendecomposition payload size");
        EigenDecomposition {
            eigenvalues: data[..n].to_vec(),
            eigenvectors: Matrix::from_vec(n, n, data[n..].to_vec()),
        }
    }

    /// Number of `f32` words in the wire format for dimension `n`.
    pub fn wire_len(n: usize) -> usize {
        n + n * n
    }

    /// Detect a truncated decomposition (see [`crate::randeig`]): counts
    /// the leading modes whose eigenvalue *and* entire eigenvector column
    /// are exactly zero — the padding the randomized backend emits for
    /// the discarded subspace — and returns `Some(kept_rank)` when any
    /// exist. Exact decompositions return `None`: their columns are unit
    /// vectors, so a zero column cannot occur, and the exact zeros
    /// survive `f32` wire round trips bit-for-bit, making the detection
    /// stable across the allgather and checkpoint paths.
    pub fn truncated_rank(&self) -> Option<usize> {
        let n = self.eigenvalues.len();
        let q = &self.eigenvectors;
        let mut padded = 0usize;
        for j in 0..n {
            let zero_col = self.eigenvalues[j] == 0.0 && (0..n).all(|i| q[(i, j)] == 0.0);
            if zero_col {
                padded += 1;
            } else {
                break;
            }
        }
        if padded == 0 {
            None
        } else {
            Some(n - padded)
        }
    }
}

/// Maximum number of full Jacobi sweeps before giving up. Converging
/// symmetric matrices almost always finish in 6–12 sweeps.
const MAX_SWEEPS: usize = 50;

/// Symmetric eigendecomposition of `a`.
///
/// # Panics
/// Panics if `a` is not square. Asymmetry beyond float noise is a caller
/// bug; callers should [`Matrix::symmetrize`] first (the K-FAC factor code
/// does).
///
/// # Errors
/// Returns [`LinAlgError::NotConverged`] if the off-diagonal mass fails to
/// vanish within the sweep budget (pathological inputs only).
pub fn eigh(a: &Matrix) -> Result<EigenDecomposition, LinAlgError> {
    assert!(a.is_square(), "eigh requires a square matrix");
    let n = a.rows();
    if n == 0 {
        return Ok(EigenDecomposition {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(0, 0),
        });
    }

    // Work in f64, in arena-recycled workspace: the two n×n buffers are
    // the solver's only large transients, and factor shapes repeat every
    // update interval, so steady-state eigendecompositions reuse them.
    let mut m = arena::take_f64(n * n);
    for (d, &s) in m.iter_mut().zip(a.as_slice()) {
        *d = s as f64;
    }
    let mut q = arena::take_f64(n * n);
    q.fill(0.0);
    for i in 0..n {
        q[i * n + i] = 1.0;
    }

    let idx = |i: usize, j: usize| i * n + j;
    let frob: f64 = m.iter().map(|&x| x * x).sum::<f64>().sqrt();
    // Absolute tolerance on off-diagonal entries, scaled by matrix norm.
    let tol = 1e-14 * frob.max(1e-300);

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[idx(i, j)] * m[idx(i, j)];
            }
        }
        if off.sqrt() <= tol {
            converged = true;
            break;
        }

        for p in 0..n {
            for qq in (p + 1)..n {
                let apq = m[idx(p, qq)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m[idx(p, p)];
                let aqq = m[idx(qq, qq)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation J(p,q,θ)ᵀ M J(p,q,θ) in place.
                for k in 0..n {
                    let mkp = m[idx(k, p)];
                    let mkq = m[idx(k, qq)];
                    m[idx(k, p)] = c * mkp - s * mkq;
                    m[idx(k, qq)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[idx(p, k)];
                    let mqk = m[idx(qq, k)];
                    m[idx(p, k)] = c * mpk - s * mqk;
                    m[idx(qq, k)] = s * mpk + c * mqk;
                }
                // Accumulate the eigenvector basis: Q ← Q · J.
                for k in 0..n {
                    let qkp = q[idx(k, p)];
                    let qkq = q[idx(k, qq)];
                    q[idx(k, p)] = c * qkp - s * qkq;
                    q[idx(k, qq)] = s * qkp + c * qkq;
                }
            }
        }
    }

    if !converged {
        // One final check: tiny matrices may converge exactly on the last sweep.
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[idx(i, j)] * m[idx(i, j)];
            }
        }
        if off.sqrt() > tol.max(1e-10 * frob) {
            arena::recycle_f64(m);
            arena::recycle_f64(q);
            return Err(LinAlgError::NotConverged);
        }
    }

    // Extract, sort ascending, round to f32.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[idx(i, i)]).collect();
    order.sort_by(|&a, &b| diag[a].partial_cmp(&diag[b]).expect("NaN eigenvalue"));

    let eigenvalues: Vec<f32> = order.iter().map(|&i| diag[i] as f32).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        for i in 0..n {
            eigenvectors[(i, new_j)] = q[idx(i, old_j)] as f32;
        }
    }
    arena::recycle_f64(m);
    arena::recycle_f64(q);

    Ok(EigenDecomposition {
        eigenvalues,
        eigenvectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn random_symmetric(n: usize, rng: &mut Rng64) -> Matrix {
        let data: Vec<f32> = (0..n * n).map(|_| rng.normal_f32()).collect();
        let mut a = Matrix::from_vec(n, n, data);
        let at = a.transpose();
        a.add_assign(&at);
        a.scale(0.5);
        a
    }

    fn random_spd(n: usize, rng: &mut Rng64) -> Matrix {
        // XᵀX + εI is SPD — the same construction as a damped K-FAC factor.
        let x = Matrix::from_vec(2 * n, n, (0..2 * n * n).map(|_| rng.normal_f32()).collect());
        let mut a = x.gram();
        a.scale(1.0 / (2 * n) as f32);
        a.add_diag(1e-3);
        a
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = eigh(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![1.0, 2.0, 3.0]);
        // Eigenvectors are (signed, permuted) identity columns.
        let recon = e.reconstruct();
        assert!(recon.max_abs_diff(&a) < 1e-5);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = eigh(&a).unwrap();
        assert!((e.eigenvalues[0] - 1.0).abs() < 1e-5);
        assert!((e.eigenvalues[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn reconstruction_random_symmetric() {
        let mut rng = Rng64::new(11);
        for n in [1, 2, 3, 5, 17, 64] {
            let a = random_symmetric(n, &mut rng);
            let e = eigh(&a).unwrap();
            let recon = e.reconstruct();
            let scale = a.max_abs().max(1.0);
            assert!(
                recon.max_abs_diff(&a) < 1e-4 * scale,
                "n={} diff={}",
                n,
                recon.max_abs_diff(&a)
            );
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let mut rng = Rng64::new(12);
        let a = random_symmetric(33, &mut rng);
        let e = eigh(&a).unwrap();
        let qtq = e.eigenvectors.matmul_tn(&e.eigenvectors);
        assert!(qtq.max_abs_diff(&Matrix::identity(33)) < 1e-5);
    }

    #[test]
    fn spd_eigenvalues_positive() {
        let mut rng = Rng64::new(13);
        let a = random_spd(24, &mut rng);
        let e = eigh(&a).unwrap();
        assert!(e.eigenvalues.iter().all(|&l| l > 0.0));
        // Ascending order.
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn eigh_inverse_matches_direct_inverse_action() {
        // A⁻¹ x computed via Q Λ⁻¹ Qᵀ x must solve A y = x.
        let mut rng = Rng64::new(14);
        let a = random_spd(12, &mut rng);
        let e = eigh(&a).unwrap();
        let x: Vec<f32> = (0..12).map(|_| rng.normal_f32()).collect();
        // y = Q Λ⁻¹ Qᵀ x
        let qtx = e.eigenvectors.transpose().matvec(&x);
        let scaled: Vec<f32> = qtx
            .iter()
            .zip(&e.eigenvalues)
            .map(|(&v, &l)| v / l)
            .collect();
        let y = e.eigenvectors.matvec(&scaled);
        let ay = a.matvec(&y);
        for (ai, xi) in ay.iter().zip(&x) {
            assert!((ai - xi).abs() < 1e-3, "A·A⁻¹x ≠ x: {} vs {}", ai, xi);
        }
    }

    #[test]
    fn wire_format_round_trip() {
        let mut rng = Rng64::new(15);
        let a = random_symmetric(9, &mut rng);
        let e = eigh(&a).unwrap();
        let wire = e.to_bytes_f32();
        assert_eq!(wire.len(), EigenDecomposition::wire_len(9));
        let back = EigenDecomposition::from_bytes_f32(9, &wire);
        assert_eq!(back.eigenvalues, e.eigenvalues);
        assert_eq!(back.eigenvectors, e.eigenvectors);
    }

    #[test]
    fn empty_matrix() {
        let e = eigh(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.eigenvalues.is_empty());
    }

    #[test]
    fn trace_is_preserved() {
        let mut rng = Rng64::new(16);
        let a = random_symmetric(21, &mut rng);
        let e = eigh(&a).unwrap();
        let sum: f32 = e.eigenvalues.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-3 * a.trace().abs().max(1.0));
    }
}
