//! Gauss–Jordan matrix inverse with partial pivoting.
//!
//! This is the general-purpose *explicit inverse* used by the paper's
//! `K-FAC w/ Inverse` variant (Table I). Cholesky ([`crate::cholesky`]) is
//! preferred for SPD factors; this routine is the fallback for matrices that
//! lost definiteness to round-off and the reference implementation the
//! property tests compare against.

use crate::{LinAlgError, Matrix};

/// Invert a square matrix via Gauss–Jordan elimination with partial
/// pivoting, accumulating in `f64`.
///
/// # Errors
/// [`LinAlgError::Singular`] when a pivot underflows relative tolerance.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn invert(a: &Matrix) -> Result<Matrix, LinAlgError> {
    assert!(a.is_square(), "invert requires a square matrix");
    let n = a.rows();
    if n == 0 {
        return Ok(Matrix::zeros(0, 0));
    }

    // Augmented system [M | I] in f64.
    let mut m: Vec<f64> = a.as_slice().iter().map(|&x| x as f64).collect();
    let mut inv: Vec<f64> = vec![0.0; n * n];
    for i in 0..n {
        inv[i * n + i] = 1.0;
    }

    let scale: f64 = m
        .iter()
        .fold(0.0f64, |acc, &x| acc.max(x.abs()))
        .max(f64::MIN_POSITIVE);
    let tol = 1e-12 * scale;

    for col in 0..n {
        // Partial pivot: the row with the largest |entry| in this column.
        let mut pivot_row = col;
        let mut pivot_val = m[col * n + col].abs();
        for r in (col + 1)..n {
            let v = m[r * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val <= tol {
            return Err(LinAlgError::Singular);
        }
        if pivot_row != col {
            for c in 0..n {
                m.swap(col * n + c, pivot_row * n + c);
                inv.swap(col * n + c, pivot_row * n + c);
            }
        }

        // Normalize the pivot row.
        let p = m[col * n + col];
        for c in 0..n {
            m[col * n + c] /= p;
            inv[col * n + c] /= p;
        }

        // Eliminate the column everywhere else.
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = m[r * n + col];
            if f == 0.0 {
                continue;
            }
            for c in 0..n {
                m[r * n + c] -= f * m[col * n + c];
                inv[r * n + c] -= f * inv[col * n + c];
            }
        }
    }

    Ok(Matrix::from_vec(
        n,
        n,
        inv.into_iter().map(|x| x as f32).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn inverse_of_identity() {
        let i = Matrix::identity(5);
        assert!(invert(&i).unwrap().max_abs_diff(&i) < 1e-7);
    }

    #[test]
    fn known_2x2() {
        // [[1,2],[3,4]]⁻¹ = [[-2,1],[1.5,-0.5]]
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let inv = invert(&a).unwrap();
        let expect = Matrix::from_rows(&[&[-2.0, 1.0], &[1.5, -0.5]]);
        assert!(inv.max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn random_round_trip() {
        let mut rng = Rng64::new(31);
        for n in [1, 3, 8, 25] {
            // Diagonally dominant ⇒ far from singular.
            let mut a = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.normal_f32()).collect());
            a.add_diag(n as f32);
            let inv = invert(&a).unwrap();
            let prod = a.matmul(&inv);
            assert!(prod.max_abs_diff(&Matrix::identity(n)) < 1e-3, "n={}", n);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Leading entry zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let inv = invert(&a).unwrap();
        assert!(inv.max_abs_diff(&a) < 1e-6); // this permutation is an involution
    }

    #[test]
    fn singular_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(invert(&a).unwrap_err(), LinAlgError::Singular);
    }

    #[test]
    fn matches_cholesky_on_spd() {
        let mut rng = Rng64::new(32);
        let x = Matrix::from_vec(40, 20, (0..800).map(|_| rng.normal_f32()).collect());
        let mut a = x.gram();
        a.scale(1.0 / 40.0);
        a.add_diag(0.05);
        let gj = invert(&a).unwrap();
        let ch = crate::cholesky::spd_inverse(&a).unwrap();
        assert!(gj.max_abs_diff(&ch) < 1e-2);
    }
}
