//! Cache-blocked, rayon-parallel matrix multiplication kernels.
//!
//! On the paper's platform these products run as cuBLAS GEMMs on V100s; here
//! they run on CPU cores with rayon standing in for the GPU's intra-kernel
//! parallelism. The kernels use the `ikj` loop order so the innermost loop
//! streams contiguous rows of `B` and `C` (auto-vectorizable), and split the
//! output rows across the rayon pool above a size threshold so small
//! matrices do not pay fork-join overhead.
//!
//! Besides general GEMM, this module provides the two Gram kernels the
//! K-FAC factor computation is built from:
//! `gram` (`AᵀA`) for activation factors and `gram_nt` (`A Aᵀ`).

use crate::Matrix;
use rayon::prelude::*;

/// Below this many output elements, run single-threaded: the fork-join cost
/// would dominate the multiply itself.
const PAR_THRESHOLD: usize = 64 * 64;

impl Matrix {
    /// General matrix product `C = self · other`.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let m = self.rows();
        let k = self.cols();
        let n = other.cols();
        let mut c = Matrix::zeros(m, n);

        let kernel = |i: usize, c_row: &mut [f32]| {
            let a_row = self.row(i);
            for (p, &a_ip) in a_row.iter().enumerate().take(k) {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = other.row(p);
                // Innermost loop over contiguous memory: vectorizes.
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                    *c_v += a_ip * b_v;
                }
            }
        };

        if m * n >= PAR_THRESHOLD && m > 1 {
            c.as_mut_slice()
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, c_row)| kernel(i, c_row));
        } else {
            for i in 0..m {
                let row = &mut c.as_mut_slice()[i * n..(i + 1) * n];
                kernel(i, row);
            }
        }
        c
    }

    /// `C = selfᵀ · other` without materializing the transpose.
    ///
    /// `C[j, l] = Σᵢ self[i, j] · other[i, l]`; computed as a sum of
    /// rank-one row updates so all accesses stay row-contiguous.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn dimension mismatch: {}x{}ᵀ · {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let m = self.cols();
        let n = other.cols();
        let k = self.rows();

        if m * n >= PAR_THRESHOLD && k >= 8 {
            // Partition the shared i-dimension across threads, then reduce.
            let nchunks = rayon::current_num_threads().max(1);
            let chunk = k.div_ceil(nchunks);
            let partials: Vec<Matrix> = (0..k)
                .into_par_iter()
                .step_by(chunk.max(1))
                .map(|start| {
                    let end = (start + chunk).min(k);
                    let mut acc = Matrix::zeros(m, n);
                    for i in start..end {
                        let a_row = self.row(i);
                        let b_row = other.row(i);
                        for (j, &a_ij) in a_row.iter().enumerate() {
                            if a_ij == 0.0 {
                                continue;
                            }
                            let acc_row = acc.row_mut(j);
                            for (c_v, &b_v) in acc_row.iter_mut().zip(b_row) {
                                *c_v += a_ij * b_v;
                            }
                        }
                    }
                    acc
                })
                .collect();
            let mut c = Matrix::zeros(m, n);
            for p in &partials {
                c.add_assign(p);
            }
            c
        } else {
            let mut c = Matrix::zeros(m, n);
            for i in 0..k {
                let a_row = self.row(i);
                let b_row = other.row(i);
                for (j, &a_ij) in a_row.iter().enumerate() {
                    if a_ij == 0.0 {
                        continue;
                    }
                    let acc_row = c.row_mut(j);
                    for (c_v, &b_v) in acc_row.iter_mut().zip(b_row) {
                        *c_v += a_ij * b_v;
                    }
                }
            }
            c
        }
    }

    /// `C = self · otherᵀ` without materializing the transpose.
    ///
    /// `C[i, j] = ⟨self.row(i), other.row(j)⟩` — both operands row-contiguous.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt dimension mismatch: {}x{} · {}x{}ᵀ",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let m = self.rows();
        let n = other.rows();
        let mut c = Matrix::zeros(m, n);

        let kernel = |i: usize, c_row: &mut [f32]| {
            let a_row = self.row(i);
            for (j, c_v) in c_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *c_v = acc;
            }
        };

        if m * n >= PAR_THRESHOLD && m > 1 {
            c.as_mut_slice()
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, c_row)| kernel(i, c_row));
        } else {
            for i in 0..m {
                let row = &mut c.as_mut_slice()[i * n..(i + 1) * n];
                kernel(i, row);
            }
        }
        c
    }

    /// Gram matrix `selfᵀ · self`, the kernel behind the activation factor
    /// `A = āᵀā / batch` (rows of `self` are per-example activation rows).
    ///
    /// Exploits symmetry: only the upper triangle is computed, then mirrored.
    pub fn gram(&self) -> Matrix {
        let n = self.cols();
        let k = self.rows();
        let mut g = if n * n >= PAR_THRESHOLD && k >= 8 {
            let nchunks = rayon::current_num_threads().max(1);
            let chunk = k.div_ceil(nchunks).max(1);
            let partials: Vec<Matrix> = (0..k)
                .into_par_iter()
                .step_by(chunk)
                .map(|start| {
                    let end = (start + chunk).min(k);
                    let mut acc = Matrix::zeros(n, n);
                    for i in start..end {
                        let row = self.row(i);
                        rank1_upper(&mut acc, row);
                    }
                    acc
                })
                .collect();
            let mut g = Matrix::zeros(n, n);
            for p in &partials {
                g.add_assign(p);
            }
            g
        } else {
            let mut g = Matrix::zeros(n, n);
            for i in 0..k {
                let row = self.row(i);
                rank1_upper(&mut g, row);
            }
            g
        };
        mirror_upper(&mut g);
        g
    }

    /// Gram matrix `self · selfᵀ` (per-row inner products), used for the
    /// gradient factor `G = g gᵀ / batch`.
    pub fn gram_nt(&self) -> Matrix {
        let mut g = self.matmul_nt(self);
        g.symmetrize();
        g
    }

    /// Matrix–vector product `self · x`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols(), x.len(), "matvec dimension mismatch");
        (0..self.rows())
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(x)
                    .map(|(&a, &b)| a as f64 * b as f64)
                    .sum::<f64>() as f32
            })
            .collect()
    }
}

/// Accumulate the upper triangle of the rank-one update `acc += row rowᵀ`.
#[inline]
fn rank1_upper(acc: &mut Matrix, row: &[f32]) {
    let n = row.len();
    for j in 0..n {
        let rj = row[j];
        if rj == 0.0 {
            continue;
        }
        let acc_row = acc.row_mut(j);
        for l in j..n {
            acc_row[l] += rj * row[l];
        }
    }
}

/// Copy the upper triangle onto the lower triangle.
fn mirror_upper(g: &mut Matrix) {
    let n = g.rows();
    for i in 0..n {
        for j in (i + 1)..n {
            let v = g[(i, j)];
            g[(j, i)] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn random(rows: usize, cols: usize, rng: &mut Rng64) -> Matrix {
        let data = (0..rows * cols).map(|_| rng.normal_f32()).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Naive triple-loop reference multiply.
    fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f64;
                for p in 0..a.cols() {
                    acc += a[(i, p)] as f64 * b[(p, j)] as f64;
                }
                c[(i, j)] = acc as f32;
            }
        }
        c
    }

    #[test]
    fn small_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng64::new(1);
        let a = random(7, 7, &mut rng);
        let i = Matrix::identity(7);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-6);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn parallel_path_matches_reference() {
        let mut rng = Rng64::new(2);
        // Big enough to trip the PAR_THRESHOLD.
        let a = random(96, 48, &mut rng);
        let b = random(48, 96, &mut rng);
        let c = a.matmul(&b);
        let r = reference_matmul(&a, &b);
        assert!(c.max_abs_diff(&r) < 1e-3, "diff {}", c.max_abs_diff(&r));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = Rng64::new(3);
        for (m, k, n) in [(5, 9, 4), (80, 100, 70)] {
            let a = random(k, m, &mut rng);
            let b = random(k, n, &mut rng);
            let fast = a.matmul_tn(&b);
            let slow = a.transpose().matmul(&b);
            assert!(fast.max_abs_diff(&slow) < 1e-3);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = Rng64::new(4);
        for (m, k, n) in [(5, 9, 4), (80, 100, 70)] {
            let a = random(m, k, &mut rng);
            let b = random(n, k, &mut rng);
            let fast = a.matmul_nt(&b);
            let slow = a.matmul(&b.transpose());
            assert!(fast.max_abs_diff(&slow) < 1e-3);
        }
    }

    #[test]
    fn gram_matches_tn_self() {
        let mut rng = Rng64::new(5);
        for (rows, cols) in [(6, 3), (128, 40)] {
            let a = random(rows, cols, &mut rng);
            let g = a.gram();
            let r = a.matmul_tn(&a);
            assert!(g.max_abs_diff(&r) < 2e-3);
            assert_eq!(g.asymmetry(), 0.0);
        }
    }

    #[test]
    fn gram_nt_matches_nt_self() {
        let mut rng = Rng64::new(6);
        let a = random(24, 50, &mut rng);
        let g = a.gram_nt();
        let r = a.matmul(&a.transpose());
        assert!(g.max_abs_diff(&r) < 2e-3);
        assert_eq!(g.asymmetry(), 0.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Rng64::new(7);
        let a = random(9, 5, &mut rng);
        let x: Vec<f32> = (0..5).map(|i| i as f32 - 2.0).collect();
        let xm = Matrix::from_vec(5, 1, x.clone());
        let y = a.matvec(&x);
        let ym = a.matmul(&xm);
        for i in 0..9 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn mismatched_dims_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
