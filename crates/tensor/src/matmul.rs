//! Matrix-product entry points, routed through the packed GEMM engine.
//!
//! On the paper's platform these products run as cuBLAS GEMMs on V100s;
//! here they run on the packed, register-tiled kernels of [`crate::gemm`]
//! (see that module for the packing/tiling/determinism story). This
//! module keeps the `Matrix`-level API: allocating wrappers (`matmul`,
//! `gram`, …) for convenience, and `_into` variants that write
//! caller-provided buffers for the zero-alloc hot paths.
//!
//! Besides general GEMM, this provides the two Gram kernels the K-FAC
//! factor computation is built from: `gram` (`AᵀA`) for activation
//! factors and `gram_nt` (`A Aᵀ`) — both computed triangle-only and
//! mirrored, so they are exactly symmetric by construction.

use crate::gemm::{gemm_into, gemm_symmetric_into, View};
use crate::Matrix;

impl Matrix {
    /// General matrix product `C = self · other`.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(self.rows(), other.cols());
        self.matmul_into(other, &mut c);
        c
    }

    /// `C = self · other` into a reusable output matrix (reshaped in
    /// place; contents need not be initialized — first-touch write).
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        out.reset_for(self.rows(), other.cols());
        gemm_into(
            View::new(self.as_slice(), self.rows(), self.cols()),
            View::new(other.as_slice(), other.rows(), other.cols()),
            out.as_mut_slice(),
        );
    }

    /// `C = selfᵀ · other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(self.cols(), other.cols());
        self.matmul_tn_into(other, &mut c);
        c
    }

    /// `C = selfᵀ · other` into a reusable output matrix.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn dimension mismatch: {}x{}ᵀ · {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        out.reset_for(self.cols(), other.cols());
        gemm_into(
            View::t(self.as_slice(), self.rows(), self.cols()),
            View::new(other.as_slice(), other.rows(), other.cols()),
            out.as_mut_slice(),
        );
    }

    /// `C = self · otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(self.rows(), other.rows());
        self.matmul_nt_into(other, &mut c);
        c
    }

    /// `C = self · otherᵀ` into a reusable output matrix.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt dimension mismatch: {}x{} · {}x{}ᵀ",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        out.reset_for(self.rows(), other.rows());
        gemm_into(
            View::new(self.as_slice(), self.rows(), self.cols()),
            View::t(other.as_slice(), other.rows(), other.cols()),
            out.as_mut_slice(),
        );
    }

    /// Gram matrix `selfᵀ · self`, the kernel behind the activation factor
    /// `A = āᵀā / batch` (rows of `self` are per-example activation rows).
    ///
    /// Only diagonal-touching and upper tiles are computed; the upper
    /// triangle is mirrored down, so the result is bitwise symmetric.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols(), self.cols());
        self.gram_into(&mut g);
        g
    }

    /// `selfᵀ · self` into a reusable output matrix.
    pub fn gram_into(&self, out: &mut Matrix) {
        let n = self.cols();
        out.reset_for(n, n);
        gemm_symmetric_into(
            View::t(self.as_slice(), self.rows(), n),
            View::new(self.as_slice(), self.rows(), n),
            out.as_mut_slice(),
        );
    }

    /// Gram matrix `self · selfᵀ` (per-row inner products), used for the
    /// gradient factor `G = g gᵀ / batch`. Bitwise symmetric.
    pub fn gram_nt(&self) -> Matrix {
        let mut g = Matrix::zeros(self.rows(), self.rows());
        self.gram_nt_into(&mut g);
        g
    }

    /// `self · selfᵀ` into a reusable output matrix.
    pub fn gram_nt_into(&self, out: &mut Matrix) {
        let m = self.rows();
        out.reset_for(m, m);
        gemm_symmetric_into(
            View::new(self.as_slice(), m, self.cols()),
            View::t(self.as_slice(), m, self.cols()),
            out.as_mut_slice(),
        );
    }

    /// Matrix–vector product `self · x`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols(), x.len(), "matvec dimension mismatch");
        (0..self.rows())
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(x)
                    .map(|(&a, &b)| a as f64 * b as f64)
                    .sum::<f64>() as f32
            })
            .collect()
    }
}

/// Naive triple-loop reference multiply with `f64` accumulation — the
/// oracle the packed kernels are property-tested against, and the "old
/// kernel" baseline the kernel benchmarks report speedups over.
#[doc(hidden)]
pub fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "reference_matmul dimension mismatch");
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f64;
            for p in 0..a.cols() {
                acc += a[(i, p)] as f64 * b[(p, j)] as f64;
            }
            c[(i, j)] = acc as f32;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn random(rows: usize, cols: usize, rng: &mut Rng64) -> Matrix {
        let data = (0..rows * cols).map(|_| rng.normal_f32()).collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn small_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng64::new(1);
        let a = random(7, 7, &mut rng);
        let i = Matrix::identity(7);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-6);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn packed_path_matches_reference() {
        let mut rng = Rng64::new(2);
        // Big enough for the packed parallel path.
        let a = random(96, 48, &mut rng);
        let b = random(48, 96, &mut rng);
        let c = a.matmul(&b);
        let r = reference_matmul(&a, &b);
        assert!(c.max_abs_diff(&r) < 1e-3, "diff {}", c.max_abs_diff(&r));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = Rng64::new(3);
        for (m, k, n) in [(5, 9, 4), (80, 100, 70)] {
            let a = random(k, m, &mut rng);
            let b = random(k, n, &mut rng);
            let fast = a.matmul_tn(&b);
            let slow = a.transpose().matmul(&b);
            assert!(fast.max_abs_diff(&slow) < 1e-3);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = Rng64::new(4);
        for (m, k, n) in [(5, 9, 4), (80, 100, 70)] {
            let a = random(m, k, &mut rng);
            let b = random(n, k, &mut rng);
            let fast = a.matmul_nt(&b);
            let slow = a.matmul(&b.transpose());
            assert!(fast.max_abs_diff(&slow) < 1e-3);
        }
    }

    #[test]
    fn gram_matches_tn_self() {
        let mut rng = Rng64::new(5);
        for (rows, cols) in [(6, 3), (128, 40)] {
            let a = random(rows, cols, &mut rng);
            let g = a.gram();
            let r = a.matmul_tn(&a);
            assert!(g.max_abs_diff(&r) < 2e-3);
            assert_eq!(g.asymmetry(), 0.0);
        }
    }

    #[test]
    fn gram_nt_matches_nt_self() {
        let mut rng = Rng64::new(6);
        let a = random(24, 50, &mut rng);
        let g = a.gram_nt();
        let r = a.matmul(&a.transpose());
        assert!(g.max_abs_diff(&r) < 2e-3);
        assert_eq!(g.asymmetry(), 0.0);
    }

    #[test]
    fn into_variants_reuse_storage() {
        let mut rng = Rng64::new(7);
        let a = random(40, 30, &mut rng);
        let b = random(30, 20, &mut rng);
        let mut out = Matrix::zeros(40, 20);
        let ptr = out.as_slice().as_ptr();
        a.matmul_into(&b, &mut out);
        assert_eq!(out.as_slice().as_ptr(), ptr, "no reallocation");
        assert!(out.max_abs_diff(&a.matmul(&b)) == 0.0);
        // Reuse the same buffer for a smaller product.
        a.gram_into(&mut out);
        assert_eq!(out.shape(), (30, 30));
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Rng64::new(7);
        let a = random(9, 5, &mut rng);
        let x: Vec<f32> = (0..5).map(|i| i as f32 - 2.0).collect();
        let xm = Matrix::from_vec(5, 1, x.clone());
        let y = a.matvec(&x);
        let ym = a.matmul(&xm);
        for i in 0..9 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn mismatched_dims_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
