//! Cholesky factorization for symmetric positive-definite matrices.
//!
//! The damped Kronecker factors `(A + γI)` and `(G + γI)` of Eq. 11 are SPD
//! by construction, so the *explicit inverse* K-FAC path (the one Table I
//! shows losing accuracy at large batch) can use Cholesky — cheaper and more
//! stable than LU for this matrix class. A general Gauss–Jordan fallback
//! lives in [`crate::inverse`].

use crate::{LinAlgError, Matrix};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorize an SPD matrix. Accumulates in `f64`.
    ///
    /// # Errors
    /// [`LinAlgError::NotPositiveDefinite`] when a pivot is non-positive,
    /// which for K-FAC factors signals insufficient damping.
    pub fn factor(a: &Matrix) -> Result<Self, LinAlgError> {
        assert!(a.is_square(), "cholesky requires a square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)] as f64;
                for k in 0..j {
                    sum -= l[(i, k)] as f64 * l[(j, k)] as f64;
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinAlgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt() as f32;
                } else {
                    l[(i, j)] = (sum / l[(j, j)] as f64) as f32;
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Borrow the lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` via forward + back substitution.
    // `k` indexes both the factor and the solution vector; the textbook
    // range form is clearer than iterator/enumerate contortions here.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f32]) -> Vec<f32> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Forward: L y = b
        let mut y = vec![0.0f32; n];
        for i in 0..n {
            let mut sum = b[i] as f64;
            for k in 0..i {
                sum -= self.l[(i, k)] as f64 * y[k] as f64;
            }
            y[i] = (sum / self.l[(i, i)] as f64) as f32;
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0f32; n];
        for i in (0..n).rev() {
            let mut sum = y[i] as f64;
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] as f64 * x[k] as f64;
            }
            x[i] = (sum / self.l[(i, i)] as f64) as f32;
        }
        x
    }

    /// Dense inverse `A⁻¹`, built by solving against each identity column.
    pub fn inverse(&self) -> Matrix {
        let n = self.l.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0f32; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        // The inverse of an SPD matrix is symmetric; enforce it exactly.
        inv.symmetrize();
        inv
    }

    /// `log det A = 2 Σ log L[i,i]` (diagnostic for damping studies).
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows())
            .map(|i| (self.l[(i, i)] as f64).ln())
            .sum::<f64>()
            * 2.0
    }
}

/// Convenience: SPD inverse in one call (factor + invert).
pub fn spd_inverse(a: &Matrix) -> Result<Matrix, LinAlgError> {
    Ok(Cholesky::factor(a)?.inverse())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn random_spd(n: usize, damping: f32, rng: &mut Rng64) -> Matrix {
        let x = Matrix::from_vec(2 * n, n, (0..2 * n * n).map(|_| rng.normal_f32()).collect());
        let mut a = x.gram();
        a.scale(1.0 / (2 * n) as f32);
        a.add_diag(damping);
        a
    }

    #[test]
    fn factor_known_matrix() {
        // A = [[4,2],[2,3]] → L = [[2,0],[1,sqrt(2)]]
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.l()[(0, 0)] - 2.0).abs() < 1e-6);
        assert!((ch.l()[(1, 0)] - 1.0).abs() < 1e-6);
        assert!((ch.l()[(1, 1)] - 2.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(ch.l()[(0, 1)], 0.0);
    }

    #[test]
    fn l_lt_reconstructs() {
        let mut rng = Rng64::new(21);
        let a = random_spd(16, 1e-2, &mut rng);
        let ch = Cholesky::factor(&a).unwrap();
        let recon = ch.l().matmul_nt(ch.l());
        assert!(recon.max_abs_diff(&a) < 1e-4);
    }

    #[test]
    fn solve_satisfies_system() {
        let mut rng = Rng64::new(22);
        let a = random_spd(10, 1e-2, &mut rng);
        let b: Vec<f32> = (0..10).map(|_| rng.normal_f32()).collect();
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b);
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-3);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut rng = Rng64::new(23);
        let a = random_spd(12, 1e-1, &mut rng);
        let inv = spd_inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(12)) < 1e-3);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, −1
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            LinAlgError::NotPositiveDefinite
        );
    }

    #[test]
    fn log_det_matches_eigenvalues() {
        let a = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - (24.0f64).ln()).abs() < 1e-6);
    }
}
