//! Half-precision storage formats: `bf16`/`f16` scalars and matrices.
//!
//! The packed GEMM engine is compute-dense but f32-only; the remaining
//! bottleneck on factor Grams, im2col capture buffers, and collective
//! payloads is memory bandwidth. This module supplies the storage half
//! of a bf16-storage / f32-accumulate substrate:
//!
//! * [`Dtype`] — the storage/wire format vocabulary shared by the
//!   precision policies, the fusion buffer, and the traffic accounting
//!   (every byte count in the stack routes through [`Dtype::size_of`]).
//! * Scalar conversions: `f32 ↔ bf16` (truncate-with-round-to-nearest-
//!   even on the top 16 bits; widening is exact, `bits << 16`) and
//!   `f32 ↔ f16` (IEEE binary16 with RNE, saturating to ±65504 instead
//!   of overflowing to infinity so wire payloads built from finite
//!   inputs stay finite).
//! * [`HalfMatrix`] — a `rows × cols` matrix stored as bf16 words,
//!   backed by the arena's `u16` pool; the storage type behind bf16
//!   capture/im2col scratch and the operand type of the bf16 GEMM
//!   engine in [`gemm_bf16`](crate::gemm_bf16).
//!
//! Numerics contract: `bf16_to_f32(f32_to_bf16(x))` is exact for every
//! bf16-representable value, and within a relative error of `2^-8` for
//! normal-range inputs (`2^-10` for f16) — pinned by the property suite
//! in this module and in `tests/`.

use crate::arena;
use crate::Matrix;

/// Storage / wire element format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dtype {
    /// IEEE binary32 — the default everywhere; bitwise-identical to the
    /// pre-mixed-precision stack.
    #[default]
    F32,
    /// bfloat16: f32's exponent range, 8-bit significand.
    Bf16,
    /// IEEE binary16: 5-bit exponent, 11-bit significand.
    F16,
}

impl Dtype {
    /// Element size in bytes — the single helper all byte accounting
    /// (fusion thresholds, traffic counters, wire payload sizing) routes
    /// through.
    pub fn size_of(self) -> usize {
        match self {
            Dtype::F32 => 4,
            Dtype::Bf16 | Dtype::F16 => 2,
        }
    }

    /// Stable lowercase label (metric names, policy parsing).
    pub fn name(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::Bf16 => "bf16",
            Dtype::F16 => "f16",
        }
    }

    /// Parse the [`Dtype::name`] spelling.
    pub fn parse(s: &str) -> Option<Dtype> {
        match s {
            "f32" => Some(Dtype::F32),
            "bf16" => Some(Dtype::Bf16),
            "f16" => Some(Dtype::F16),
            _ => None,
        }
    }
}

/// `f32 → bf16` with round-to-nearest-even on the dropped 16 bits.
/// NaNs are quieted (keeping the sign) so a NaN never rounds to
/// infinity; values within the last half-ULP of `f32::MAX` round to
/// bf16 infinity, exactly as hardware bf16 conversion does.
#[inline(always)]
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round = ((bits >> 16) & 1) + 0x7FFF;
    ((bits.wrapping_add(round)) >> 16) as u16
}

/// `bf16 → f32`: exact widening (`bits << 16`).
#[inline(always)]
pub fn bf16_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

/// `f32 → f16` (IEEE binary16) with round-to-nearest-even, saturating
/// to ±65504 on overflow (the ML-standard saturating cast: finite in,
/// finite out), flushing to signed zero below the smallest subnormal.
#[inline(always)]
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;
    if exp == 255 {
        // NaN stays NaN; infinity saturates like any other overflow.
        return if man != 0 {
            sign | 0x7E00
        } else {
            sign | 0x7BFF
        };
    }
    let e = exp - 127 + 15;
    if e >= 31 {
        return sign | 0x7BFF; // saturate to max finite
    }
    if e <= 0 {
        if e < -10 {
            return sign; // underflows even the subnormal range
        }
        // Subnormal: shift the 24-bit significand (implicit bit set)
        // right past the exponent deficit, RNE on the dropped bits.
        let man = man | 0x0080_0000;
        let shift = (14 - e) as u32;
        let base = man >> shift;
        let rem = man & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let round = (rem > half || (rem == half && base & 1 == 1)) as u32;
        return sign | (base + round) as u16;
    }
    // Normal: drop 13 significand bits with RNE; a carry that would
    // round into the infinity encoding saturates instead.
    let base = ((e as u32) << 10) | (man >> 13);
    let rem = man & 0x1FFF;
    let round = (rem > 0x1000 || (rem == 0x1000 && base & 1 == 1)) as u32;
    let v = base + round;
    if v >= 0x7C00 {
        return sign | 0x7BFF;
    }
    sign | v as u16
}

/// `f16 → f32`: exact widening.
#[inline(always)]
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x03FF) as u32;
    let bits = if exp == 31 {
        sign | 0x7F80_0000 | (man << 13)
    } else if exp == 0 {
        if man == 0 {
            sign
        } else {
            // Subnormal: renormalize into an f32 exponent.
            let mut m = man;
            let mut e = 127 - 15 + 1;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            sign | ((e as u32) << 23) | ((m & 0x03FF) << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

/// Round every element of `x` through bf16 storage in place — the
/// "stored at half precision" numerics without changing the container.
pub fn round_bf16_in_place(x: &mut [f32]) {
    for v in x {
        *v = bf16_to_f32(f32_to_bf16(*v));
    }
}

/// Encode a slice to bf16 words (RNE), appending onto `dst`.
pub fn encode_bf16(src: &[f32], dst: &mut Vec<u16>) {
    dst.reserve(src.len());
    for &v in src {
        dst.push(f32_to_bf16(v));
    }
}

/// Encode a slice to f16 words (RNE, saturating), appending onto `dst`.
pub fn encode_f16(src: &[f32], dst: &mut Vec<u16>) {
    dst.reserve(src.len());
    for &v in src {
        dst.push(f32_to_f16(v));
    }
}

/// A `rows × cols` row-major matrix stored as bf16 words — half the
/// bytes of a [`Matrix`], exact to widen. Storage comes from the arena's
/// `u16` pool; call [`HalfMatrix::recycle`] on the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HalfMatrix {
    data: Vec<u16>,
    rows: usize,
    cols: usize,
}

impl HalfMatrix {
    /// Round an f32 matrix into bf16 storage (RNE per element).
    pub fn from_matrix(m: &Matrix) -> HalfMatrix {
        HalfMatrix::from_f32(m.as_slice(), m.rows(), m.cols())
    }

    /// Round a row-major f32 slice into bf16 storage.
    pub fn from_f32(data: &[f32], rows: usize, cols: usize) -> HalfMatrix {
        assert_eq!(data.len(), rows * cols, "half matrix shape mismatch");
        let mut buf = arena::take_u16(data.len());
        for (d, &v) in buf.iter_mut().zip(data) {
            *d = f32_to_bf16(v);
        }
        HalfMatrix {
            data: buf,
            rows,
            cols,
        }
    }

    /// Build a bias-augmented bf16 capture of `x`: each row of `x`
    /// rounded to bf16, with a homogeneous `1` column appended when
    /// `bias` is set (the §II-C bias-folding trick, at capture width).
    /// Encodes straight from the f32 source — there is no f32-width
    /// intermediate, so this IS the half-width capture scratch.
    pub fn from_augmented(x: &Matrix, bias: bool) -> HalfMatrix {
        let extra = usize::from(bias);
        let (rows, cols) = (x.rows(), x.cols() + extra);
        let mut buf = arena::take_u16(rows * cols);
        const ONE: u16 = 0x3F80; // f32_to_bf16(1.0)
        for r in 0..rows {
            let dst = &mut buf[r * cols..(r + 1) * cols];
            for (d, &v) in dst.iter_mut().zip(x.row(r)) {
                *d = f32_to_bf16(v);
            }
            if extra == 1 {
                dst[cols - 1] = ONE;
            }
        }
        HalfMatrix {
            data: buf,
            rows,
            cols,
        }
    }

    /// Build a bf16 capture of `x` with every element scaled by `scale`
    /// before rounding (scale at f32, round once).
    pub fn from_scaled(x: &Matrix, scale: f32) -> HalfMatrix {
        let mut buf = arena::take_u16(x.len());
        for (d, &v) in buf.iter_mut().zip(x.as_slice()) {
            *d = f32_to_bf16(v * scale);
        }
        HalfMatrix {
            data: buf,
            rows: x.rows(),
            cols: x.cols(),
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw bf16 words, row-major.
    pub fn data(&self) -> &[u16] {
        &self.data
    }

    /// Widen back to f32 (exact).
    pub fn to_matrix(&self) -> Matrix {
        let mut out = arena::take_matrix(self.rows, self.cols);
        for (d, &h) in out.as_mut_slice().iter_mut().zip(&self.data) {
            *d = bf16_to_f32(h);
        }
        out
    }

    /// Return the storage to the arena's `u16` pool.
    pub fn recycle(self) {
        arena::recycle_u16(self.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn bf16_round_trip_is_exact_for_representable_values() {
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            1.5,
            256.0,
            -3.140625,
            6.1035156e-5,
            3.3895314e38, // max finite bf16
        ] {
            let h = f32_to_bf16(v);
            let back = bf16_to_f32(h);
            assert_eq!(v.to_bits(), back.to_bits(), "{v} not exact through bf16");
            // Idempotent: re-rounding an already-representable value is identity.
            assert_eq!(f32_to_bf16(back), h);
        }
    }

    #[test]
    fn bf16_relative_error_bound_on_normal_range() {
        let mut rng = Rng64::new(11);
        for _ in 0..20_000 {
            let v = rng.normal_f32() * 10f32.powi((rng.next_u64() % 60) as i32 - 30);
            if !v.is_normal() {
                continue;
            }
            let r = bf16_to_f32(f32_to_bf16(v));
            let rel = ((r - v) / v).abs();
            assert!(rel <= 1.0 / 256.0, "bf16 rel error {rel} for {v}");
        }
    }

    #[test]
    fn bf16_rne_ties_to_even() {
        // 1.0 + 2^-9 is exactly halfway between 1.0 and the next bf16;
        // RNE picks the even significand (1.0).
        let tie = f32::from_bits(0x3F80_8000);
        assert_eq!(bf16_to_f32(f32_to_bf16(tie)), 1.0);
        // One ULP above the tie rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(bf16_to_f32(f32_to_bf16(above)), f32::from_bits(0x3F81_0000));
    }

    #[test]
    fn bf16_edge_cases() {
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
        assert_eq!(bf16_to_f32(f32_to_bf16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(
            bf16_to_f32(f32_to_bf16(f32::NEG_INFINITY)),
            f32::NEG_INFINITY
        );
        // A NaN must never round into the infinity encoding.
        let payload_nan = f32::from_bits(0x7F80_0001);
        assert!(bf16_to_f32(f32_to_bf16(payload_nan)).is_nan());
        // Subnormal f32s collapse toward zero without panicking.
        let sub = f32::from_bits(1);
        assert!(bf16_to_f32(f32_to_bf16(sub)).abs() <= f32::MIN_POSITIVE);
    }

    #[test]
    fn f16_round_trip_exact_and_bounded() {
        for v in [0.0f32, -0.0, 1.0, -2.0, 0.25, 65504.0, 6.1035156e-5] {
            let r = f16_to_f32(f32_to_f16(v));
            assert_eq!(v.to_bits(), r.to_bits(), "{v} not exact through f16");
        }
        let mut rng = Rng64::new(13);
        for _ in 0..20_000 {
            let v = rng.normal_f32() * 10f32.powi((rng.next_u64() % 8) as i32 - 3);
            if !v.is_normal() || v.abs() < 6.2e-5 || v.abs() > 65000.0 {
                continue;
            }
            let r = f16_to_f32(f32_to_f16(v));
            let rel = ((r - v) / v).abs();
            assert!(rel <= 1.0 / 1024.0, "f16 rel error {rel} for {v}");
        }
    }

    #[test]
    fn f16_saturates_and_handles_subnormals() {
        assert_eq!(f16_to_f32(f32_to_f16(1e6)), 65504.0);
        assert_eq!(f16_to_f32(f32_to_f16(-1e6)), -65504.0);
        assert_eq!(f16_to_f32(f32_to_f16(f32::INFINITY)), 65504.0);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        // Smallest f16 subnormal round-trips exactly.
        let tiny = 5.9604645e-8;
        assert_eq!(f16_to_f32(f32_to_f16(tiny)), tiny);
        // Below half the smallest subnormal flushes to (signed) zero.
        assert_eq!(f16_to_f32(f32_to_f16(1e-9)), 0.0);
        assert_eq!(f16_to_f32(f32_to_f16(-1e-9)).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn dtype_helpers() {
        assert_eq!(Dtype::F32.size_of(), 4);
        assert_eq!(Dtype::Bf16.size_of(), 2);
        assert_eq!(Dtype::F16.size_of(), 2);
        for d in [Dtype::F32, Dtype::Bf16, Dtype::F16] {
            assert_eq!(Dtype::parse(d.name()), Some(d));
        }
        assert_eq!(Dtype::parse("f64"), None);
        assert_eq!(Dtype::default(), Dtype::F32);
    }

    #[test]
    fn half_matrix_round_trips_through_arena() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -0.5, 0.25, 100.0]);
        let h = HalfMatrix::from_matrix(&m);
        assert_eq!(h.rows(), 2);
        assert_eq!(h.cols(), 3);
        let back = h.to_matrix();
        // All inputs are bf16-representable → exact round trip.
        assert_eq!(m.as_slice(), back.as_slice());
        h.recycle();
        crate::arena::recycle_matrix(back);
    }
}
