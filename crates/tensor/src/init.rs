//! Weight initialization schemes.
//!
//! ResNet training in the paper uses PyTorch defaults: Kaiming/He-normal
//! for convolution kernels and uniform fan-in bounds for linear layers.
//! These helpers reproduce those schemes on top of [`crate::Rng64`].

use crate::rng::Rng64;

/// Fill with samples from `N(0, std²)`.
pub fn fill_normal(xs: &mut [f32], mean: f32, std: f32, rng: &mut Rng64) {
    for x in xs {
        *x = rng.normal(mean, std);
    }
}

/// Fill with samples from `U[lo, hi)`.
pub fn fill_uniform(xs: &mut [f32], lo: f32, hi: f32, rng: &mut Rng64) {
    for x in xs {
        *x = rng.uniform_range(lo, hi);
    }
}

/// Kaiming/He normal initialization for ReLU networks:
/// `std = sqrt(2 / fan_in)` (He et al. 2015, the ResNet paper's scheme).
pub fn kaiming_normal(xs: &mut [f32], fan_in: usize, rng: &mut Rng64) {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    fill_normal(xs, 0.0, std, rng);
}

/// Xavier/Glorot uniform initialization:
/// `U[−a, a]` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(xs: &mut [f32], fan_in: usize, fan_out: usize, rng: &mut Rng64) {
    assert!(fan_in + fan_out > 0);
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    fill_uniform(xs, -a, a, rng);
}

/// PyTorch's `Linear` default: `U[−1/√fan_in, 1/√fan_in)` for weights and
/// biases alike.
pub fn linear_default(xs: &mut [f32], fan_in: usize, rng: &mut Rng64) {
    assert!(fan_in > 0);
    let bound = 1.0 / (fan_in as f32).sqrt();
    fill_uniform(xs, -bound, bound, rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(xs: &[f32]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = xs
            .iter()
            .map(|&x| (x as f64 - mean) * (x as f64 - mean))
            .sum::<f64>()
            / n;
        (mean, var)
    }

    #[test]
    fn kaiming_std_matches_fan_in() {
        let mut rng = Rng64::new(1);
        let mut xs = vec![0.0f32; 100_000];
        kaiming_normal(&mut xs, 50, &mut rng);
        let (mean, var) = stats(&xs);
        assert!(mean.abs() < 0.005);
        assert!((var - 2.0 / 50.0).abs() < 0.002, "var {}", var);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = Rng64::new(2);
        let mut xs = vec![0.0f32; 10_000];
        xavier_uniform(&mut xs, 30, 70, &mut rng);
        let a = (6.0f32 / 100.0).sqrt();
        assert!(xs.iter().all(|&x| x >= -a && x < a));
    }

    #[test]
    fn linear_default_bounds_and_spread() {
        let mut rng = Rng64::new(3);
        let mut xs = vec![0.0f32; 10_000];
        linear_default(&mut xs, 16, &mut rng);
        let b = 0.25f32;
        assert!(xs.iter().all(|&x| x >= -b && x < b));
        let (_, var) = stats(&xs);
        // Uniform variance = (2b)²/12.
        assert!((var - (0.5f64 * 0.5 / 12.0)).abs() < 0.002);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = vec![0.0f32; 64];
        let mut b = vec![0.0f32; 64];
        kaiming_normal(&mut a, 8, &mut Rng64::new(42));
        kaiming_normal(&mut b, 8, &mut Rng64::new(42));
        assert_eq!(a, b);
    }
}
