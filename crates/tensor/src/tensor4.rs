//! Minimal 4-dimensional NCHW tensor for the neural-network substrate.
//!
//! Activations flowing through the CNN are `(batch, channels, height,
//! width)` blocks, matching PyTorch's memory layout. The type is a thin
//! shape-checked wrapper over a contiguous `Vec<f32>`; all heavy math is
//! done by reshaping into [`Matrix`](crate::Matrix) views (im2col, GEMM).

/// Contiguous NCHW tensor of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl Tensor4 {
    /// Allocate a zero tensor of shape `(n, c, h, w)`.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Tensor4 {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != n*c*h*w`.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n * c * h * w, "tensor4 data length mismatch");
        Tensor4 { n, c, h, w, data }
    }

    /// Shape as `(n, c, h, w)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Batch dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }
    /// Channel dimension.
    #[inline]
    pub fn c(&self) -> usize {
        self.c
    }
    /// Height.
    #[inline]
    pub fn h(&self) -> usize {
        self.h
    }
    /// Width.
    #[inline]
    pub fn w(&self) -> usize {
        self.w
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat offset of `(n, c, h, w)`.
    #[inline(always)]
    pub fn offset(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Read one element.
    #[inline(always)]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.offset(n, c, h, w)]
    }

    /// Mutable access to one element.
    #[inline(always)]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let o = self.offset(n, c, h, w);
        &mut self.data[o]
    }

    /// Borrow the whole buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the whole buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshape in place for buffer reuse: keeps the backing allocation
    /// when capacity allows and leaves the contents unspecified (stale
    /// values from the previous use; only a grown tail is zero-filled).
    /// Mirrors [`Matrix::reset_for`](crate::Matrix::reset_for).
    pub fn reset_for(&mut self, n: usize, c: usize, h: usize, w: usize) {
        self.data.resize(n * c * h * w, 0.0);
        self.n = n;
        self.c = c;
        self.h = h;
        self.w = w;
    }

    /// Borrow the `(c,h,w)` block of sample `n` as a contiguous slice.
    #[inline]
    pub fn sample(&self, n: usize) -> &[f32] {
        let stride = self.c * self.h * self.w;
        &self.data[n * stride..(n + 1) * stride]
    }

    /// Mutably borrow the `(c,h,w)` block of sample `n`.
    #[inline]
    pub fn sample_mut(&mut self, n: usize) -> &mut [f32] {
        let stride = self.c * self.h * self.w;
        &mut self.data[n * stride..(n + 1) * stride]
    }

    /// Borrow channel plane `(n, c)` as a contiguous `h*w` slice.
    #[inline]
    pub fn plane(&self, n: usize, c: usize) -> &[f32] {
        let start = self.offset(n, c, 0, 0);
        &self.data[start..start + self.h * self.w]
    }

    /// Mutably borrow channel plane `(n, c)`.
    #[inline]
    pub fn plane_mut(&mut self, n: usize, c: usize) -> &mut [f32] {
        let start = self.offset(n, c, 0, 0);
        &mut self.data[start..start + self.h * self.w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_indexing() {
        let mut t = Tensor4::zeros(2, 3, 4, 5);
        assert_eq!(t.shape(), (2, 3, 4, 5));
        assert_eq!(t.len(), 120);
        *t.at_mut(1, 2, 3, 4) = 7.0;
        assert_eq!(t.at(1, 2, 3, 4), 7.0);
        // Last element of the buffer.
        assert_eq!(t.as_slice()[119], 7.0);
    }

    #[test]
    fn nchw_layout_order() {
        let mut t = Tensor4::zeros(1, 2, 2, 2);
        *t.at_mut(0, 0, 0, 1) = 1.0;
        *t.at_mut(0, 1, 0, 0) = 2.0;
        // c-major after n: offset(0,1,0,0) = 4.
        assert_eq!(t.as_slice()[1], 1.0);
        assert_eq!(t.as_slice()[4], 2.0);
    }

    #[test]
    fn sample_and_plane_views() {
        let data: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let t = Tensor4::from_vec(2, 3, 2, 2, data);
        assert_eq!(t.sample(1)[0], 12.0);
        assert_eq!(t.plane(0, 1), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(t.plane(1, 2), &[20.0, 21.0, 22.0, 23.0]);
    }

    #[test]
    #[should_panic(expected = "tensor4 data length mismatch")]
    fn bad_length_panics() {
        let _ = Tensor4::from_vec(1, 1, 2, 2, vec![0.0; 3]);
    }
}
