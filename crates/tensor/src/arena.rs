//! Thread-local scratch arena: reusable buffers for the kernel hot path.
//!
//! Steady-state K-FAC iterations run the same kernels on the same shapes
//! every step, so every transient buffer — GEMM packing panels, im2col
//! patch matrices, Jacobi eigensolver workspace, per-layer factor
//! temporaries — can be recycled instead of reallocated. This module is
//! the allocator those paths share: a per-thread free list of `Vec<f32>` /
//! `Vec<f64>` buffers keyed by capacity.
//!
//! The contract is ownership round-tripping, not borrowing: [`take_f32`]
//! hands out an owned `Vec` (so it can back a [`Matrix`] and flow through
//! existing APIs), and the hot path returns it with [`recycle_f32`] once
//! the iteration is done with it. After one warm-up iteration every
//! `take` is served from the free list and the kernel path performs zero
//! heap allocations — the property the `zero_alloc` integration test
//! pins with a counting allocator.
//!
//! Buffers are *not* cleared on recycle and their contents after `take`
//! are unspecified (stale data from the previous use; the tail beyond the
//! buffer's previous length is zero-filled, so all of it is initialized
//! memory and this stays entirely safe Rust). Kernels treat arena
//! buffers as write-first scratch.

use crate::Matrix;
use std::cell::RefCell;

/// Free-list caps: past this many pooled buffers (or bytes) per thread,
/// recycled buffers are simply dropped. Generous enough for every layer
/// of a ResNet-32 step; a backstop, not a tuning knob.
const MAX_POOLED_BUFFERS: usize = 256;
const MAX_POOLED_BYTES: usize = 256 << 20;

struct PoolInner {
    f32s: Vec<Vec<f32>>,
    f64s: Vec<Vec<f64>>,
    u16s: Vec<Vec<u16>>,
    bytes: usize,
}

impl PoolInner {
    const fn new() -> Self {
        PoolInner {
            f32s: Vec::new(),
            f64s: Vec::new(),
            u16s: Vec::new(),
            bytes: 0,
        }
    }

    fn pooled_buffers(&self) -> usize {
        self.f32s.len() + self.f64s.len() + self.u16s.len()
    }
}

thread_local! {
    static ARENA: RefCell<PoolInner> = const { RefCell::new(PoolInner::new()) };
}

/// Best-fit pop: the smallest pooled buffer whose capacity covers `len`.
/// Returns `None` when nothing fits (caller allocates fresh).
fn pop_fit<T>(pool: &mut Vec<Vec<T>>, len: usize) -> Option<Vec<T>> {
    let mut best: Option<(usize, usize)> = None; // (index, capacity)
    for (i, buf) in pool.iter().enumerate() {
        let cap = buf.capacity();
        if cap >= len && best.is_none_or(|(_, bc)| cap < bc) {
            best = Some((i, cap));
        }
    }
    best.map(|(i, _)| pool.swap_remove(i))
}

/// Take an owned `len`-element `f32` scratch buffer. Contents are
/// unspecified (but initialized); treat as write-first scratch.
pub fn take_f32(len: usize) -> Vec<f32> {
    ARENA.with(|a| {
        let mut inner = a.borrow_mut();
        match pop_fit(&mut inner.f32s, len) {
            Some(mut buf) => {
                inner.bytes -= buf.capacity() * std::mem::size_of::<f32>();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    })
}

/// Return an `f32` buffer to this thread's free list.
pub fn recycle_f32(buf: Vec<f32>) {
    if buf.capacity() == 0 {
        return;
    }
    ARENA.with(|a| {
        let mut inner = a.borrow_mut();
        let bytes = buf.capacity() * std::mem::size_of::<f32>();
        if inner.pooled_buffers() >= MAX_POOLED_BUFFERS || inner.bytes + bytes > MAX_POOLED_BYTES {
            return; // drop it
        }
        inner.bytes += bytes;
        inner.f32s.push(buf);
    });
}

/// Take an owned `len`-element `u16` scratch buffer (bf16/f16 word
/// storage for half-precision capture buffers, GEMM packs, and wire
/// payloads). Contents unspecified; treat as write-first scratch.
pub fn take_u16(len: usize) -> Vec<u16> {
    ARENA.with(|a| {
        let mut inner = a.borrow_mut();
        match pop_fit(&mut inner.u16s, len) {
            Some(mut buf) => {
                inner.bytes -= buf.capacity() * std::mem::size_of::<u16>();
                buf.resize(len, 0);
                buf
            }
            None => vec![0; len],
        }
    })
}

/// Return a `u16` buffer to this thread's free list.
pub fn recycle_u16(buf: Vec<u16>) {
    if buf.capacity() == 0 {
        return;
    }
    ARENA.with(|a| {
        let mut inner = a.borrow_mut();
        let bytes = buf.capacity() * std::mem::size_of::<u16>();
        if inner.pooled_buffers() >= MAX_POOLED_BUFFERS || inner.bytes + bytes > MAX_POOLED_BYTES {
            return;
        }
        inner.bytes += bytes;
        inner.u16s.push(buf);
    });
}

/// Take an owned `len`-element `f64` scratch buffer (eigensolver
/// workspace). Contents unspecified; treat as write-first scratch.
pub fn take_f64(len: usize) -> Vec<f64> {
    ARENA.with(|a| {
        let mut inner = a.borrow_mut();
        match pop_fit(&mut inner.f64s, len) {
            Some(mut buf) => {
                inner.bytes -= buf.capacity() * std::mem::size_of::<f64>();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    })
}

/// Return an `f64` buffer to this thread's free list.
pub fn recycle_f64(buf: Vec<f64>) {
    if buf.capacity() == 0 {
        return;
    }
    ARENA.with(|a| {
        let mut inner = a.borrow_mut();
        let bytes = buf.capacity() * std::mem::size_of::<f64>();
        if inner.pooled_buffers() >= MAX_POOLED_BUFFERS || inner.bytes + bytes > MAX_POOLED_BYTES {
            return;
        }
        inner.bytes += bytes;
        inner.f64s.push(buf);
    });
}

/// Take a `rows × cols` scratch matrix from the arena. Contents are
/// unspecified; every kernel that receives one writes first.
pub fn take_matrix(rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, take_f32(rows * cols))
}

/// Return a matrix's storage to this thread's free list.
pub fn recycle_matrix(m: Matrix) {
    recycle_f32(m.into_vec());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_storage() {
        let buf = take_f32(1024);
        let ptr = buf.as_ptr();
        recycle_f32(buf);
        let again = take_f32(1024);
        assert_eq!(again.as_ptr(), ptr, "same capacity must be reused");
        assert_eq!(again.len(), 1024);
        recycle_f32(again);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate() {
        // Drain this thread's pool into a known state.
        recycle_f32(Vec::with_capacity(4096));
        recycle_f32(Vec::with_capacity(128));
        let buf = take_f32(100);
        assert!(buf.capacity() < 4096, "picked the 128-cap buffer");
        recycle_f32(buf);
    }

    #[test]
    fn shrinking_take_truncates() {
        let mut buf = take_f32(64);
        buf.iter_mut().for_each(|v| *v = 7.0);
        recycle_f32(buf);
        let small = take_f32(8);
        assert_eq!(small.len(), 8);
        recycle_f32(small);
    }

    #[test]
    fn growth_within_capacity_zeroes_only_tail() {
        let mut buf = take_f32(16);
        buf.iter_mut().for_each(|v| *v = 3.0);
        buf.reserve(64 - buf.len());
        recycle_f32(buf);
        let grown = take_f32(64);
        assert_eq!(grown.len(), 64);
        // Head may be stale (3.0), tail must be initialized (0.0 fill).
        assert!(grown[16..].iter().all(|&v| v == 0.0));
        recycle_f32(grown);
    }

    #[test]
    fn u16_round_trip_reuses_storage() {
        let buf = take_u16(512);
        let ptr = buf.as_ptr();
        recycle_u16(buf);
        let again = take_u16(512);
        assert_eq!(again.as_ptr(), ptr, "same capacity must be reused");
        assert_eq!(again.len(), 512);
        recycle_u16(again);
    }

    #[test]
    fn matrix_round_trip() {
        let m = take_matrix(8, 8);
        assert_eq!(m.shape(), (8, 8));
        recycle_matrix(m);
        let f64buf = take_f64(256);
        assert_eq!(f64buf.len(), 256);
        recycle_f64(f64buf);
    }
}
