//! Packed, register-tiled GEMM: the compute substrate's inner engine.
//!
//! On the paper's platform every dense product (forward/backward conv
//! GEMMs, the `AᵀA`/`G Gᵀ` factor Grams) is a cuBLAS call on a V100;
//! here the equivalent is this BLIS-style CPU kernel:
//!
//! * **Packing.** `B` is packed once per product into column panels of
//!   [`NR`] columns (zero-padded), laid out so the micro-kernel streams it
//!   with unit stride; `A` is packed per row-block into [`MR`]-row panels.
//!   Packing pays one extra pass over the operands and buys perfectly
//!   contiguous, aligned inner loops — the classic GotoBLAS trade.
//! * **Register tiling.** The micro-kernel holds an `MR × NR` accumulator
//!   tile in registers across the whole `k` extent of a cache block,
//!   performing `MR·NR` multiply-adds per `MR + NR` loads. The plain
//!   `mul`/`add` formulation (no `mul_add`) keeps results bitwise
//!   identical across machines with and without FMA.
//! * **Cache blocking.** `k` is split into [`KC`]-deep blocks (B panels
//!   sized for L1, A panels for L2), rows into [`MC`]-row blocks that
//!   double as the parallel work grain.
//!
//! **Determinism is structural.** Block sizes are compile-time constants
//! and each output tile is produced by exactly one task that walks the
//! `k` blocks in ascending order, so every output element accumulates in
//! one fixed order — independent of run, pool size, and `--overlap`
//! worker count. The bitwise exec-strategy tests and the pool-size
//! determinism property tests both lean on this.
//!
//! Operands are described by [`View`]s (slice + logical shape +
//! orientation), so transposed products (`AᵀB`, `ABᵀ`) pack directly from
//! the original storage — nothing is ever materialized transposed — and
//! layers can multiply against raw parameter slices without cloning them
//! into `Matrix` values.

use crate::arena;
use rayon::prelude::*;

/// Micro-tile rows: rows of C held in registers by the micro-kernel.
pub const MR: usize = 8;
/// Micro-tile columns: one AVX-512 lane's worth of `f32`s (also fine as
/// two AVX2 lanes or four SSE lanes — the kernel autovectorizes).
pub const NR: usize = 16;
/// Depth of a cache block: a `KC × NR` B panel is ~16 KiB (L1-resident).
const KC: usize = 256;
/// Rows per A block and per parallel task: an `MC × KC` A pack is
/// 64 KiB (L2-resident), and one task owns `MC` full rows of C.
const MC: usize = 64;

/// Below this many multiply-adds the packed path's setup overhead
/// dominates; a plain triple loop wins and stays on the calling thread.
const SMALL_FLOP_CUTOFF: usize = 24 * 24 * 24;

/// Storage orientation of a [`View`].
#[derive(Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Logical `(r, c)` is stored at `data[r * ld + c]`.
    NoTrans,
    /// Logical `(r, c)` is stored at `data[c * ld + r]`.
    Trans,
}

/// A borrowed matrix operand: storage slice, leading dimension, logical
/// shape, and orientation. `View::new` is a plain row-major matrix;
/// `View::t` presents the same storage transposed.
#[derive(Clone, Copy)]
pub struct View<'a> {
    data: &'a [f32],
    ld: usize,
    op: Op,
    rows: usize,
    cols: usize,
}

impl<'a> View<'a> {
    /// Row-major `rows × cols` view over `data`.
    pub fn new(data: &'a [f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "view shape mismatch");
        View {
            data,
            ld: cols,
            op: Op::NoTrans,
            rows,
            cols,
        }
    }

    /// Transposed view: `data` stores `rows × cols` row-major, presented
    /// as its `cols × rows` transpose.
    pub fn t(data: &'a [f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "view shape mismatch");
        View {
            data,
            ld: cols,
            op: Op::Trans,
            rows: cols,
            cols: rows,
        }
    }

    /// Logical row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline(always)]
    fn at(&self, r: usize, c: usize) -> f32 {
        match self.op {
            Op::NoTrans => self.data[r * self.ld + c],
            Op::Trans => self.data[c * self.ld + r],
        }
    }
}

/// `out = a · b`, writing every element of `out` exactly once
/// (first-touch; `out` may be unspecified scratch). `out.len()` must be
/// `a.rows() * b.cols()`.
///
/// # Panics
/// Panics on inner-dimension or output-length mismatch.
pub fn gemm_into(a: View<'_>, b: View<'_>, out: &mut [f32]) {
    gemm_impl(a, b, out, false);
}

/// Like [`gemm_into`] for a product known to be symmetric (a Gram
/// product `XᵀX` or `XXᵀ`): only tiles touching or above the diagonal
/// are computed, then the strict upper triangle is mirrored onto the
/// lower — halving the FLOPs and guaranteeing exact (bitwise) symmetry.
pub fn gemm_symmetric_into(a: View<'_>, b: View<'_>, out: &mut [f32]) {
    assert_eq!(a.rows(), b.cols(), "symmetric product must be square");
    gemm_impl(a, b, out, true);
    mirror_upper_to_lower(out, a.rows());
}

fn gemm_impl(a: View<'_>, b: View<'_>, out: &mut [f32], upper_only: bool) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    assert_eq!(
        k,
        b.rows(),
        "gemm dimension mismatch: {m}x{k} · {}x{n}",
        b.rows()
    );
    assert_eq!(out.len(), m * n, "gemm output length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    if m * n * k <= SMALL_FLOP_CUTOFF {
        gemm_naive(a, b, out);
        return;
    }

    // ---- Pack B once: KC-deep blocks of NR-column panels. ----
    let n_pad = n.div_ceil(NR) * NR;
    let mut bpack = arena::take_f32(k * n_pad);
    {
        let bp = &mut bpack[..];
        let mut base = 0usize;
        let mut k0 = 0usize;
        while k0 < k {
            let kc = KC.min(k - k0);
            pack_b_block(b, k0, kc, n, &mut bp[base..base + kc * n_pad]);
            base += kc * n_pad;
            k0 += kc;
        }
    }

    // ---- Parallel over MC-row blocks of C; each task owns its rows. ----
    let bpack_ref = &bpack[..];
    let run_block = |i0: usize, out_block: &mut [f32]| {
        let mc = MC.min(m - i0);
        let mc_pad = mc.div_ceil(MR) * MR;
        let mut apack = arena::take_f32(mc_pad * KC);
        let mut base = 0usize;
        let mut k0 = 0usize;
        let mut first = true;
        while k0 < k {
            let kc = KC.min(k - k0);
            pack_a_block(a, i0, mc, k0, kc, &mut apack[..mc_pad * kc]);
            // Gram products skip panels strictly below the diagonal of
            // this row block; the mirror pass fills them afterwards.
            let j_start = if upper_only { (i0 / NR) * NR } else { 0 };
            let mut j0 = j_start;
            while j0 < n {
                let nr = NR.min(n - j0);
                let bpanel = &bpack_ref[base + j0 * kc..base + j0 * kc + kc * NR];
                let mut ii = 0usize;
                while ii < mc {
                    let mr = MR.min(mc - ii);
                    let apanel = &apack[ii * kc..ii * kc + kc * MR];
                    micro_kernel(kc, apanel, bpanel, out_block, ii, n, j0, mr, nr, first);
                    ii += MR;
                }
                j0 += NR;
            }
            base += kc * n_pad;
            k0 += kc;
            first = false;
        }
        arena::recycle_f32(apack);
    };

    if m > MC && rayon::current_num_threads() > 1 {
        out.par_chunks_mut(MC * n)
            .enumerate()
            .for_each(|(t, out_block)| run_block(t * MC, out_block));
    } else {
        for (t, out_block) in out.chunks_mut(MC * n).enumerate() {
            run_block(t * MC, out_block);
        }
    }
    arena::recycle_f32(bpack);
}

/// Pack rows `k0..k0+kc` of `b` into NR-column panels: panel `jp` holds
/// columns `jp*NR..` with element `(p, jj)` at `panel[p*NR + jj]`,
/// zero-padded past `n`. Every packed element is written (first-touch).
fn pack_b_block(b: View<'_>, k0: usize, kc: usize, n: usize, dst: &mut [f32]) {
    let mut panel_base = 0usize;
    let mut j0 = 0usize;
    while j0 < n {
        let nr = NR.min(n - j0);
        let panel = &mut dst[panel_base..panel_base + kc * NR];
        match b.op {
            Op::NoTrans => {
                for p in 0..kc {
                    let src_row = &b.data[(k0 + p) * b.ld + j0..(k0 + p) * b.ld + j0 + nr];
                    let d = &mut panel[p * NR..p * NR + NR];
                    d[..nr].copy_from_slice(src_row);
                    d[nr..].fill(0.0);
                }
            }
            Op::Trans => {
                // Logical (p, j) lives at data[j * ld + p]: walk columns of
                // the logical matrix (rows of storage) contiguously.
                for (jj, col) in (j0..j0 + nr).enumerate() {
                    let src = &b.data[col * b.ld + k0..col * b.ld + k0 + kc];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * NR + jj] = v;
                    }
                }
                if nr < NR {
                    for p in 0..kc {
                        panel[p * NR + nr..(p + 1) * NR].fill(0.0);
                    }
                }
            }
        }
        panel_base += kc * NR;
        j0 += NR;
    }
}

/// Pack rows `i0..i0+mc`, depth `k0..k0+kc` of `a` into MR-row panels:
/// panel `ip` holds rows `ip*MR..` with element `(ii, p)` at
/// `panel[p*MR + ii]`, zero-padded past `mc`.
fn pack_a_block(a: View<'_>, i0: usize, mc: usize, k0: usize, kc: usize, dst: &mut [f32]) {
    let mut panel_base = 0usize;
    let mut ii0 = 0usize;
    while ii0 < mc {
        let mr = MR.min(mc - ii0);
        let panel = &mut dst[panel_base..panel_base + kc * MR];
        match a.op {
            Op::NoTrans => {
                for (ii, row) in (i0 + ii0..i0 + ii0 + mr).enumerate() {
                    let src = &a.data[row * a.ld + k0..row * a.ld + k0 + kc];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * MR + ii] = v;
                    }
                }
                if mr < MR {
                    for p in 0..kc {
                        panel[p * MR + mr..(p + 1) * MR].fill(0.0);
                    }
                }
            }
            Op::Trans => {
                // Logical (i, p) lives at data[p * ld + i]: each depth step
                // reads a contiguous run of logical rows.
                for p in 0..kc {
                    let src = &a.data[(k0 + p) * a.ld + i0 + ii0..(k0 + p) * a.ld + i0 + ii0 + mr];
                    let d = &mut panel[p * MR..p * MR + MR];
                    d[..mr].copy_from_slice(src);
                    d[mr..].fill(0.0);
                }
            }
        }
        panel_base += kc * MR;
        ii0 += MR;
    }
}

/// The register-tile inner kernel: accumulate an `MR × NR` tile over one
/// KC block, then store (first block) or add (later blocks) the valid
/// `mr × nr` region into `out`. No data-dependent branches — the old
/// kernels' `a_ip == 0.0` skip mispredicted on dense operands and is
/// deliberately gone (see the bench note in the README).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro_kernel(
    kc: usize,
    apanel: &[f32],
    bpanel: &[f32],
    out: &mut [f32],
    row0: usize,
    ldc: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    first: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    compute_tile(kc, apanel, bpanel, &mut acc);
    if first {
        for i in 0..mr {
            let dst = &mut out[(row0 + i) * ldc + j0..(row0 + i) * ldc + j0 + nr];
            dst.copy_from_slice(&acc[i][..nr]);
        }
    } else {
        for i in 0..mr {
            let dst = &mut out[(row0 + i) * ldc + j0..(row0 + i) * ldc + j0 + nr];
            for (d, &v) in dst.iter_mut().zip(acc[i][..nr].iter()) {
                *d += v;
            }
        }
    }
}

/// Accumulate the full `MR × NR` tile: `acc[i][j] = Σ_p A[i,p]·B[p,j]`.
///
/// Dispatches to an explicit-SIMD kernel where available. All paths
/// perform the *same* per-element operations in the *same* order (plain
/// mul then add, ascending `p`) — SIMD only changes how many `(i, j)`
/// lanes run at once, never an element's accumulation sequence — so
/// scalar, AVX and AVX-512 produce bitwise identical tiles. The explicit
/// intrinsics exist because LLVM's autovectorizer turns the scalar
/// formulation into gather/shuffle soup instead of the obvious
/// broadcast-multiply loop (measured at ~4 GFLOP/s vs ~25 here).
#[inline(always)]
fn compute_tile(kc: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert!(apanel.len() >= kc * MR && bpanel.len() >= kc * NR);
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: feature checked; panel lengths checked above.
            unsafe { simd::tile_avx512(kc, apanel, bpanel, acc) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: feature checked; panel lengths checked above.
            unsafe { simd::tile_avx(kc, apanel, bpanel, acc) };
            return;
        }
    }
    tile_scalar(kc, apanel, bpanel, acc);
}

/// Portable fallback tile kernel (and the semantic reference for the
/// SIMD paths).
fn tile_scalar(kc: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    for p in 0..kc {
        let ap = &apanel[p * MR..p * MR + MR];
        let bp = &bpanel[p * NR..p * NR + NR];
        for (acc_row, &a_ip) in acc.iter_mut().zip(ap.iter()) {
            for (c, &b_pj) in acc_row.iter_mut().zip(bp.iter()) {
                *c += a_ip * b_pj;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod simd {
    //! Explicit-SIMD tile kernels. Layouts mirror the packing scheme:
    //! `apanel[p*MR + i]`, `bpanel[p*NR + j]`; one B row per depth step
    //! is loaded contiguously and each A element is broadcast against it.
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// One 16-lane register holds a full NR-wide tile row; MR rows keep
    /// 8 zmm accumulators live across the whole depth loop.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn tile_avx512(
        kc: usize,
        apanel: &[f32],
        bpanel: &[f32],
        acc: &mut [[f32; NR]; MR],
    ) {
        let mut v = [_mm512_setzero_ps(); MR];
        for p in 0..kc {
            let b = _mm512_loadu_ps(bpanel.as_ptr().add(p * NR));
            for (i, vi) in v.iter_mut().enumerate() {
                let a = _mm512_set1_ps(*apanel.get_unchecked(p * MR + i));
                *vi = _mm512_add_ps(*vi, _mm512_mul_ps(a, b));
            }
        }
        for (row, vi) in acc.iter_mut().zip(v.iter()) {
            _mm512_storeu_ps(row.as_mut_ptr(), *vi);
        }
    }

    /// 8-lane variant: a tile row is two ymm registers, and the tile is
    /// processed in two 4-row halves so the live accumulators (8) plus
    /// the two B registers and the broadcast stay within the 16 ymm regs.
    #[target_feature(enable = "avx")]
    pub unsafe fn tile_avx(kc: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
        const HALF: usize = MR / 2;
        for h in 0..2 {
            let r0 = h * HALF;
            let mut v = [[_mm256_setzero_ps(); 2]; HALF];
            for p in 0..kc {
                let b0 = _mm256_loadu_ps(bpanel.as_ptr().add(p * NR));
                let b1 = _mm256_loadu_ps(bpanel.as_ptr().add(p * NR + 8));
                for (i, vi) in v.iter_mut().enumerate() {
                    let a = _mm256_set1_ps(*apanel.get_unchecked(p * MR + r0 + i));
                    vi[0] = _mm256_add_ps(vi[0], _mm256_mul_ps(a, b0));
                    vi[1] = _mm256_add_ps(vi[1], _mm256_mul_ps(a, b1));
                }
            }
            for (i, vi) in v.iter().enumerate() {
                _mm256_storeu_ps(acc[r0 + i].as_mut_ptr(), vi[0]);
                _mm256_storeu_ps(acc[r0 + i].as_mut_ptr().add(8), vi[1]);
            }
        }
    }
}

/// Small-product fallback: a branch-free triple loop on the calling
/// thread, still first-touch (each output element written exactly once).
fn gemm_naive(a: View<'_>, b: View<'_>, out: &mut [f32]) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.at(i, p) * b.at(p, j);
            }
            out[i * n + j] = acc;
        }
    }
}

/// Copy the strict upper triangle onto the lower one.
fn mirror_upper_to_lower(out: &mut [f32], n: usize) {
    for i in 0..n {
        for j in (i + 1)..n {
            out[j * n + i] = out[i * n + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn random(len: usize, rng: &mut Rng64) -> Vec<f32> {
        (0..len).map(|_| rng.normal_f32()).collect()
    }

    fn reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += a[i * k + p] as f64 * b[p * n + j] as f64;
                }
                c[i * n + j] = acc as f32;
            }
        }
        c
    }

    fn max_diff(x: &[f32], y: &[f32]) -> f32 {
        x.iter()
            .zip(y)
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }

    #[test]
    fn packed_matches_reference_across_shapes() {
        let mut rng = Rng64::new(1);
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (64, 64, 64),
            (65, 257, 33),
            (100, 300, 100),
            (128, 512, 129),
        ] {
            let a = random(m * k, &mut rng);
            let b = random(k * n, &mut rng);
            let mut out = vec![f32::NAN; m * n];
            gemm_into(View::new(&a, m, k), View::new(&b, k, n), &mut out);
            let r = reference(&a, &b, m, k, n);
            let d = max_diff(&out, &r);
            assert!(d < 1e-2, "({m},{k},{n}) diff {d}");
        }
    }

    #[test]
    fn transposed_views_match_materialized_transpose() {
        let mut rng = Rng64::new(2);
        let (m, k, n) = (70, 130, 90);
        let at = random(k * m, &mut rng); // stores k x m, viewed as m x k
        let bt = random(n * k, &mut rng); // stores n x k, viewed as k x n
        let mut a = vec![0.0; m * k];
        for i in 0..m {
            for p in 0..k {
                a[i * k + p] = at[p * m + i];
            }
        }
        let mut b = vec![0.0; k * n];
        for p in 0..k {
            for j in 0..n {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let mut out_t = vec![f32::NAN; m * n];
        gemm_into(View::t(&at, k, m), View::t(&bt, n, k), &mut out_t);
        let mut out_n = vec![f32::NAN; m * n];
        gemm_into(View::new(&a, m, k), View::new(&b, k, n), &mut out_n);
        assert_eq!(out_t, out_n, "views must be bitwise path-equal");
    }

    #[test]
    fn k_zero_zeroes_output() {
        let mut out = vec![f32::NAN; 6];
        gemm_into(View::new(&[], 2, 0), View::new(&[], 0, 3), &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn symmetric_gram_is_bitwise_symmetric() {
        let mut rng = Rng64::new(3);
        let (k, n) = (200, 150);
        let x = random(k * n, &mut rng);
        let mut g = vec![f32::NAN; n * n];
        gemm_symmetric_into(View::t(&x, k, n), View::new(&x, k, n), &mut g);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(g[i * n + j].to_bits(), g[j * n + i].to_bits());
            }
        }
        // And it matches the full product numerically.
        let mut full = vec![f32::NAN; n * n];
        gemm_into(View::t(&x, k, n), View::new(&x, k, n), &mut full);
        assert!(max_diff(&g, &full) < 1e-3);
    }

    #[test]
    fn simd_tile_is_bitwise_equal_to_scalar() {
        let mut rng = Rng64::new(5);
        let kc = 97;
        let apanel = random(kc * MR, &mut rng);
        let bpanel = random(kc * NR, &mut rng);
        let mut scalar = [[0.0f32; NR]; MR];
        tile_scalar(kc, &apanel, &bpanel, &mut scalar);
        let mut dispatched = [[0.0f32; NR]; MR];
        compute_tile(kc, &apanel, &bpanel, &mut dispatched);
        for (s, d) in scalar.iter().flatten().zip(dispatched.iter().flatten()) {
            assert_eq!(s.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn deterministic_across_pool_sizes() {
        let mut rng = Rng64::new(4);
        let (m, k, n) = (300, 300, 300);
        let a = random(m * k, &mut rng);
        let b = random(k * n, &mut rng);
        let mut outs: Vec<Vec<f32>> = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            rayon::set_pool_threads(threads);
            let mut out = vec![f32::NAN; m * n];
            gemm_into(View::new(&a, m, k), View::new(&b, k, n), &mut out);
            outs.push(out);
        }
        for o in &outs[1..] {
            assert_eq!(&outs[0], o, "results must be bitwise pool-size independent");
        }
    }
}
