//! Deterministic pseudo-random number generation.
//!
//! Everything in the reproduction — weight init, synthetic data, sampler
//! shuffles — flows through this one generator so experiments are exactly
//! repeatable from a seed, and per-rank streams can be split without
//! correlation (`Rng64::split`). The core is xoshiro256++ seeded through
//! SplitMix64, the standard recommendation of the xoshiro authors.

/// SplitMix64 step: used for seeding and stream splitting.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256++ PRNG with Box–Muller normal sampling.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
    /// Cached second output of the last Box–Muller transform.
    spare_normal: Option<f64>,
}

impl Rng64 {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 {
            s,
            spare_normal: None,
        }
    }

    /// Derive an independent stream for `(seed-stream) = (self, stream_id)`.
    ///
    /// Used to give each rank / each dataset shard its own uncorrelated
    /// generator while staying reproducible.
    pub fn split(&self, stream_id: u64) -> Rng64 {
        // Mix the current state with the stream id through SplitMix64.
        let mut sm = self.s[0]
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(stream_id.wrapping_mul(0xD1B54A32D192ED03))
            .wrapping_add(self.s[3]);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 {
            s,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn uniform_f32(&mut self) -> f32 {
        self.uniform_f64() as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform_f32()
    }

    /// Uniform integer in `[0, bound)` using rejection-free multiply-shift.
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        // 128-bit multiply-high: unbiased enough for simulation purposes
        // (bias < 2⁻⁶⁴ relative).
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Standard normal via Box–Muller (caches the paired sample).
    pub fn normal_f64(&mut self) -> f64 {
        if let Some(v) = self.spare_normal.take() {
            return v;
        }
        // u1 in (0,1] to keep ln finite.
        let u1 = 1.0 - self.uniform_f64();
        let u2 = self.uniform_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Standard normal as `f32`.
    #[inline]
    pub fn normal_f32(&mut self) -> f32 {
        self.normal_f64() as f32
    }

    /// Normal with explicit mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal_f32()
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(8);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let root = Rng64::new(99);
        let mut s1 = root.split(1);
        let mut s1b = root.split(1);
        let mut s2 = root.split(2);
        for _ in 0..50 {
            assert_eq!(s1.next_u64(), s1b.next_u64());
        }
        let mut s1 = root.split(1);
        let same = (0..64).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Rng64::new(5);
        for _ in 0..10_000 {
            let u = rng.uniform_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = Rng64::new(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {}", mean);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::new(8);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal_f64()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {}", mean);
        assert!((var - 1.0).abs() < 0.03, "var {}", var);
    }

    #[test]
    fn next_below_covers_range() {
        let mut rng = Rng64::new(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::new(10);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Overwhelmingly unlikely to be the identity permutation.
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = Rng64::new(11);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {}", rate);
    }
}
