//! Row-major dense `f32` matrix.
//!
//! This is the central data type of the substrate: Kronecker factors,
//! weight gradients, eigenvector bases and preconditioned gradients are all
//! `Matrix` values. The layout is plain row-major `Vec<f32>` so rows are
//! contiguous, which the GEMM kernels in [`crate::matmul`] exploit.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a diagonal matrix from a slice of diagonal entries.
    pub fn from_diag(diag: &[f32]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix::from_vec(r, c, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the backing row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the backing row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix, returning its row-major storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Unchecked get; `debug_assert`s bounds.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Unchecked set; `debug_assert`s bounds.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Reshape in place for buffer reuse: keeps the backing allocation
    /// when capacity allows and leaves the contents unspecified (stale
    /// values from the previous use; only a grown tail is zero-filled).
    /// The zero-alloc hot paths call this on persistent per-layer scratch
    /// matrices before writing them front to back.
    pub fn reset_for(&mut self, rows: usize, cols: usize) {
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Return the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        // Block the transpose for cache friendliness on large matrices.
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                for i in ib..(ib + B).min(self.rows) {
                    for j in jb..(jb + B).min(self.cols) {
                        t.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        t
    }

    /// Extract the main diagonal.
    pub fn diag(&self) -> Vec<f32> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Sum of the main diagonal.
    pub fn trace(&self) -> f32 {
        self.diag().iter().sum()
    }

    /// Force exact symmetry by averaging with the transpose in place.
    ///
    /// Kronecker factors are symmetric by construction but floating-point
    /// GEMM can leave asymmetry on the order of machine epsilon; the Jacobi
    /// eigensolver assumes exact symmetry, so factors are symmetrized before
    /// decomposition (mirroring what dense LAPACK drivers do by reading only
    /// one triangle).
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let m = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = m;
                self[(j, i)] = m;
            }
        }
    }

    /// Maximum absolute difference from the transpose (symmetry residual).
    pub fn asymmetry(&self) -> f32 {
        assert!(self.is_square());
        let mut worst = 0.0f32;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for i in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.cols);
            for j in 0..max_cols {
                write!(f, "{:>10.4}", self[(i, j)])?;
                if j + 1 < max_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m[(2, 1)], 6.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 0)], 3.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_large_blocked() {
        // Exercise the blocked path with a non-multiple-of-block size.
        let n = 70;
        let mut m = Matrix::zeros(n, n + 13);
        for i in 0..n {
            for j in 0..n + 13 {
                m[(i, j)] = (i * 1000 + j) as f32;
            }
        }
        let t = m.transpose();
        for i in 0..n {
            for j in 0..n + 13 {
                assert_eq!(t[(j, i)], m[(i, j)]);
            }
        }
    }

    #[test]
    fn symmetrize_fixes_asymmetry() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[2.5, 3.0]]);
        assert!(m.asymmetry() > 0.4);
        m.symmetrize();
        assert_eq!(m.asymmetry(), 0.0);
        assert_eq!(m[(0, 1)], 2.25);
        assert_eq!(m[(1, 0)], 2.25);
    }

    #[test]
    fn diag_and_trace() {
        let m = Matrix::from_rows(&[&[1.0, 9.0], &[9.0, 2.0]]);
        assert_eq!(m.diag(), vec![1.0, 2.0]);
        assert_eq!(m.trace(), 3.0);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.shape(), (3, 3));
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }
}
