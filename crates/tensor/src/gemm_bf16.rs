//! Packed, register-tiled GEMM over bf16 storage with f32 accumulation.
//!
//! The f32 engine in [`gemm`](crate::gemm) is compute-dense but
//! bandwidth-bound on the K-FAC factor shapes: a ResNet-32 A-factor Gram
//! streams a `k × n` activation matrix whose bytes, not FLOPs, set the
//! wall clock. This engine halves those bytes by keeping the operands in
//! bf16 words end to end:
//!
//! * **Operands stream as bf16, panels compute as f32.** Both packs
//!   read bf16 words and widen to f32 in registers as they pack (bf16 →
//!   f32 is exact: `bits << 16`), so the memory the engine *streams* —
//!   the capture/im2col operands — is half-width, while the L1-resident
//!   panels the micro-kernel loops over are plain f32. Keeping the
//!   widen out of the inner loop matters: `vpmovzxwd`/`vpslld` compete
//!   with the FMAs for ports 0/5, and an in-kernel widen was measured
//!   ~25% slower on the K-FAC factor shapes.
//! * **Accumulation is f32 via fused multiply-add.** Unlike the f32
//!   engine — whose plain mul-then-add keeps bitwise parity with
//!   machines lacking FMA — this engine is explicitly FMA-based:
//!   `f32::mul_add` is IEEE-754 correctly rounded, so the scalar path
//!   is bitwise identical to `vfmaddps` by specification, on any
//!   hardware. The fused op is also where the speed comes from: one
//!   issue per multiply-add doubles the arithmetic ceiling the non-FMA
//!   f32 engine tops out at.
//! * **Determinism is structural**, exactly as in the f32 engine: one
//!   task per [`MC`]-row block, ascending `k` walk, compile-time block
//!   sizes — results are bitwise identical across runs, pool sizes, and
//!   the scalar/AVX2/AVX-512 paths.
//!
//! There is no small-shape fallback: every product goes through the
//! packed path, so the accumulation order is a function of shape alone.

use crate::arena;
use crate::half::{bf16_to_f32, HalfMatrix};
use crate::Matrix;
use rayon::prelude::*;

/// Micro-tile rows (same as the f32 engine).
pub const MR: usize = 8;
/// Micro-tile columns: *two* zmm registers per tile row — twice the f32
/// engine's width. The f32 engine's 8×16 tile issues 9 loads per 8
/// multiply-adds and its non-FMA kernel is arithmetic-bound anyway; the
/// fused kernel here retires 2 FMAs/cycle, so the tile must be wide
/// enough (16 FMAs vs 10 loads per depth step) to keep the FMA ports —
/// not the load ports — the bottleneck.
pub const NR: usize = 32;
/// Depth of a cache block: a `KC × NR` f32-widened B panel is 16 KiB
/// (L1-resident), same footprint as the f32 engine at half the depth.
const KC: usize = 128;
/// Rows per A block and per parallel task (f32-widened A pack:
/// `MC × KC × 4` = 128 KiB, L2-resident).
const MC: usize = 64;

/// Storage orientation of a [`Bf16View`].
#[derive(Clone, Copy, PartialEq, Eq)]
enum Op {
    NoTrans,
    Trans,
}

/// A borrowed bf16 matrix operand: `u16` word slice, leading dimension,
/// logical shape, and orientation — the bf16 twin of
/// [`gemm::View`](crate::gemm::View).
#[derive(Clone, Copy)]
pub struct Bf16View<'a> {
    data: &'a [u16],
    ld: usize,
    op: Op,
    rows: usize,
    cols: usize,
}

impl<'a> Bf16View<'a> {
    /// Row-major `rows × cols` view over bf16 words.
    pub fn new(data: &'a [u16], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "bf16 view shape mismatch");
        Bf16View {
            data,
            ld: cols,
            op: Op::NoTrans,
            rows,
            cols,
        }
    }

    /// Transposed view: `data` stores `rows × cols` row-major, presented
    /// as its `cols × rows` transpose.
    pub fn t(data: &'a [u16], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "bf16 view shape mismatch");
        Bf16View {
            data,
            ld: cols,
            op: Op::Trans,
            rows: cols,
            cols: rows,
        }
    }

    /// Logical row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// `out = a · b` with f32 accumulation, writing every element of `out`
/// exactly once (first-touch). `out.len()` must be `a.rows() * b.cols()`.
///
/// # Panics
/// Panics on inner-dimension or output-length mismatch.
pub fn gemm_bf16_into(a: Bf16View<'_>, b: Bf16View<'_>, out: &mut [f32]) {
    gemm_impl(a, b, out, false);
}

/// Like [`gemm_bf16_into`] for a product known to be symmetric (a Gram
/// product `XᵀX`): only tiles touching or above the diagonal are
/// computed, then the strict upper triangle is mirrored onto the lower.
pub fn gemm_bf16_symmetric_into(a: Bf16View<'_>, b: Bf16View<'_>, out: &mut [f32]) {
    assert_eq!(a.rows(), b.cols(), "symmetric product must be square");
    gemm_impl(a, b, out, true);
    mirror_upper_to_lower(out, a.rows());
}

impl HalfMatrix {
    /// Gram product `selfᵀ · self` (the K-FAC factor statistic) into a
    /// `cols × cols` f32 matrix, bitwise symmetric.
    pub fn gram_into(&self, out: &mut Matrix) {
        out.reset_for(self.cols(), self.cols());
        gemm_bf16_symmetric_into(
            Bf16View::t(self.data(), self.rows(), self.cols()),
            Bf16View::new(self.data(), self.rows(), self.cols()),
            out.as_mut_slice(),
        );
    }

    /// `self · otherᵀ` into an f32 matrix (the conv G-factor shape).
    pub fn matmul_nt_into(&self, other: &HalfMatrix, out: &mut Matrix) {
        out.reset_for(self.rows(), other.rows());
        gemm_bf16_into(
            Bf16View::new(self.data(), self.rows(), self.cols()),
            Bf16View::t(other.data(), other.rows(), other.cols()),
            out.as_mut_slice(),
        );
    }
}

fn gemm_impl(a: Bf16View<'_>, b: Bf16View<'_>, out: &mut [f32], upper_only: bool) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    assert_eq!(
        k,
        b.rows(),
        "bf16 gemm dimension mismatch: {m}x{k} · {}x{n}",
        b.rows()
    );
    assert_eq!(out.len(), m * n, "bf16 gemm output length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }

    // ---- Pack B once: KC-deep blocks of NR-column panels, widening
    // bf16 → f32 in registers as they pack. ----
    let n_pad = n.div_ceil(NR) * NR;
    let mut bpack = arena::take_f32(k * n_pad);
    {
        let bp = &mut bpack[..];
        let mut base = 0usize;
        let mut k0 = 0usize;
        while k0 < k {
            let kc = KC.min(k - k0);
            pack_b_block(b, k0, kc, n, &mut bp[base..base + kc * n_pad]);
            base += kc * n_pad;
            k0 += kc;
        }
    }

    // ---- Parallel over MC-row blocks of C; each task owns its rows. ----
    let bpack_ref = &bpack[..];
    let run_block = |i0: usize, out_block: &mut [f32]| {
        let mc = MC.min(m - i0);
        let mc_pad = mc.div_ceil(MR) * MR;
        let mut apack = arena::take_f32(mc_pad * KC);
        let mut base = 0usize;
        let mut k0 = 0usize;
        let mut first = true;
        while k0 < k {
            let kc = KC.min(k - k0);
            pack_a_block(a, i0, mc, k0, kc, &mut apack[..mc_pad * kc]);
            let j_start = if upper_only { (i0 / NR) * NR } else { 0 };
            let mut j0 = j_start;
            while j0 < n {
                let nr = NR.min(n - j0);
                let bpanel = &bpack_ref[base + j0 * kc..base + j0 * kc + kc * NR];
                let mut ii = 0usize;
                while ii < mc {
                    let mr = MR.min(mc - ii);
                    let apanel = &apack[ii * kc..ii * kc + kc * MR];
                    micro_kernel(kc, apanel, bpanel, out_block, ii, n, j0, mr, nr, first);
                    ii += MR;
                }
                j0 += NR;
            }
            base += kc * n_pad;
            k0 += kc;
            first = false;
        }
        arena::recycle_f32(apack);
    };

    if m > MC && rayon::current_num_threads() > 1 {
        out.par_chunks_mut(MC * n)
            .enumerate()
            .for_each(|(t, out_block)| run_block(t * MC, out_block));
    } else {
        for (t, out_block) in out.chunks_mut(MC * n).enumerate() {
            run_block(t * MC, out_block);
        }
    }
    arena::recycle_f32(bpack);
}

/// Pack rows `k0..k0+kc` of `b` into NR-column panels, widening
/// bf16 → f32 element-wise (exact) so the micro-kernel streams plain
/// f32 loads; zero-padded past `n`.
fn pack_b_block(b: Bf16View<'_>, k0: usize, kc: usize, n: usize, dst: &mut [f32]) {
    let mut panel_base = 0usize;
    let mut j0 = 0usize;
    while j0 < n {
        let nr = NR.min(n - j0);
        let panel = &mut dst[panel_base..panel_base + kc * NR];
        match b.op {
            Op::NoTrans => {
                for p in 0..kc {
                    let src_row = &b.data[(k0 + p) * b.ld + j0..(k0 + p) * b.ld + j0 + nr];
                    let d = &mut panel[p * NR..p * NR + NR];
                    for (x, &v) in d[..nr].iter_mut().zip(src_row) {
                        *x = bf16_to_f32(v);
                    }
                    d[nr..].fill(0.0);
                }
            }
            Op::Trans => {
                for (jj, col) in (j0..j0 + nr).enumerate() {
                    let src = &b.data[col * b.ld + k0..col * b.ld + k0 + kc];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * NR + jj] = bf16_to_f32(v);
                    }
                }
                if nr < NR {
                    for p in 0..kc {
                        panel[p * NR + nr..(p + 1) * NR].fill(0.0);
                    }
                }
            }
        }
        panel_base += kc * NR;
        j0 += NR;
    }
}

/// Pack rows `i0..i0+mc`, depth `k0..k0+kc` of `a` into MR-row panels,
/// widening bf16 → f32 at pack time (exact) so the micro-kernel's
/// broadcast is a plain f32 `set1`.
fn pack_a_block(a: Bf16View<'_>, i0: usize, mc: usize, k0: usize, kc: usize, dst: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    let avx2 = std::arch::is_x86_feature_detected!("avx2");
    let mut panel_base = 0usize;
    let mut ii0 = 0usize;
    while ii0 < mc {
        let mr = MR.min(mc - ii0);
        let panel = &mut dst[panel_base..panel_base + kc * MR];
        match a.op {
            Op::NoTrans => {
                // The interleave here is a strided scatter (stride MR),
                // which the compiler cannot vectorize and which dominates
                // the small-`n` conv shapes where one j-panel cannot
                // amortize it — so full tiles go through an explicit
                // 8×16 widen-transpose.
                let mut p_done = 0usize;
                #[cfg(target_arch = "x86_64")]
                if mr == MR && avx2 {
                    let row0 = i0 + ii0;
                    while p_done + 16 <= kc {
                        let base = |i: usize| (row0 + i) * a.ld + k0 + p_done;
                        // SAFETY: avx2 checked; all 8 rows expose 16
                        // in-bounds words at `base(i)` (p_done+16 ≤ kc).
                        unsafe {
                            let rows = [
                                a.data.as_ptr().add(base(0)),
                                a.data.as_ptr().add(base(1)),
                                a.data.as_ptr().add(base(2)),
                                a.data.as_ptr().add(base(3)),
                                a.data.as_ptr().add(base(4)),
                                a.data.as_ptr().add(base(5)),
                                a.data.as_ptr().add(base(6)),
                                a.data.as_ptr().add(base(7)),
                            ];
                            packsimd::widen_transpose_8x16(
                                rows,
                                panel.as_mut_ptr().add(p_done * MR),
                            );
                        }
                        p_done += 16;
                    }
                }
                for (ii, row) in (i0 + ii0..i0 + ii0 + mr).enumerate() {
                    let src = &a.data[row * a.ld + k0 + p_done..row * a.ld + k0 + kc];
                    for (p, &v) in src.iter().enumerate() {
                        panel[(p_done + p) * MR + ii] = bf16_to_f32(v);
                    }
                }
                if mr < MR {
                    for p in 0..kc {
                        panel[p * MR + mr..(p + 1) * MR].fill(0.0);
                    }
                }
            }
            Op::Trans => {
                for p in 0..kc {
                    let src = &a.data[(k0 + p) * a.ld + i0 + ii0..(k0 + p) * a.ld + i0 + ii0 + mr];
                    let d = &mut panel[p * MR..p * MR + MR];
                    for (x, &v) in d[..mr].iter_mut().zip(src) {
                        *x = bf16_to_f32(v);
                    }
                    d[mr..].fill(0.0);
                }
            }
        }
        panel_base += kc * MR;
        ii0 += MR;
    }
}

/// Register-tile inner kernel: accumulate an `MR × NR` f32 tile over one
/// KC block, then store (first block) or add (later blocks).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro_kernel(
    kc: usize,
    apanel: &[f32],
    bpanel: &[f32],
    out: &mut [f32],
    row0: usize,
    ldc: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    first: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    compute_tile(kc, apanel, bpanel, &mut acc);
    if first {
        for i in 0..mr {
            let dst = &mut out[(row0 + i) * ldc + j0..(row0 + i) * ldc + j0 + nr];
            dst.copy_from_slice(&acc[i][..nr]);
        }
    } else {
        for i in 0..mr {
            let dst = &mut out[(row0 + i) * ldc + j0..(row0 + i) * ldc + j0 + nr];
            for (d, &v) in dst.iter_mut().zip(acc[i][..nr].iter()) {
                *d += v;
            }
        }
    }
}

/// Accumulate the full tile: `acc[i][j] = fma(A[i,p], B[p,j], ·)` over
/// ascending `p`, both panels pre-widened to f32.
///
/// All paths perform the same correctly-rounded fused multiply-add per
/// element in the same order — `f32::mul_add` and `vfmaddps` both round
/// once per IEEE 754 — so scalar, AVX2+FMA, and AVX-512 tiles are
/// bitwise identical.
#[inline(always)]
fn compute_tile(kc: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert!(apanel.len() >= kc * MR && bpanel.len() >= kc * NR);
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: feature checked; panel lengths checked above.
            unsafe { simd::tile_avx512(kc, apanel, bpanel, acc) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: features checked; panel lengths checked above.
            unsafe { simd::tile_avx2(kc, apanel, bpanel, acc) };
            return;
        }
    }
    tile_scalar(kc, apanel, bpanel, acc);
}

/// Portable fallback tile kernel (and the semantic reference for the
/// SIMD paths). `mul_add` is a correctly-rounded fused op, matching the
/// hardware FMA bit for bit (software-emulated where FMA is absent —
/// slow, but this path only runs on pre-AVX2 hardware).
fn tile_scalar(kc: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    for p in 0..kc {
        let ap = &apanel[p * MR..p * MR + MR];
        let bp = &bpanel[p * NR..p * NR + NR];
        for (acc_row, &a_ip) in acc.iter_mut().zip(ap.iter()) {
            for (c, &b_pj) in acc_row.iter_mut().zip(bp.iter()) {
                *c = a_ip.mul_add(b_pj, *c);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod packsimd {
    //! SIMD widen-transpose for the A-pack's row→panel interleave.
    //! Pure data movement (bf16 → f32 widening is exact), so it changes
    //! nothing about results — only how fast the panel is produced.
    use super::MR;
    use std::arch::x86_64::*;

    /// Widen 16 bf16 words from each of 8 row pointers and store them
    /// transposed into panel layout `dst[p * MR + i]`, `p ∈ 0..16`.
    ///
    /// # Safety
    /// Requires AVX2; every `rows[i]` must expose 16 readable words and
    /// `dst` must expose `16 * MR` writable f32s.
    #[target_feature(enable = "avx2")]
    pub unsafe fn widen_transpose_8x16(rows: [*const u16; 8], dst: *mut f32) {
        let mut lo = [_mm256_setzero_ps(); 8];
        let mut hi = [_mm256_setzero_ps(); 8];
        for i in 0..8 {
            let words = _mm256_loadu_si256(rows[i] as *const __m256i);
            let wlo = _mm256_castsi256_si128(words);
            let whi = _mm256_extracti128_si256(words, 1);
            lo[i] = _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_cvtepu16_epi32(wlo), 16));
            hi[i] = _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_cvtepu16_epi32(whi), 16));
        }
        transpose8_store(lo, dst);
        transpose8_store(hi, dst.add(8 * MR));
    }

    /// Classic 8×8 f32 register transpose; column `j` of the input rows
    /// is stored contiguously at `dst + j * 8`.
    #[inline(always)]
    unsafe fn transpose8_store(r: [__m256; 8], dst: *mut f32) {
        let t0 = _mm256_unpacklo_ps(r[0], r[1]);
        let t1 = _mm256_unpackhi_ps(r[0], r[1]);
        let t2 = _mm256_unpacklo_ps(r[2], r[3]);
        let t3 = _mm256_unpackhi_ps(r[2], r[3]);
        let t4 = _mm256_unpacklo_ps(r[4], r[5]);
        let t5 = _mm256_unpackhi_ps(r[4], r[5]);
        let t6 = _mm256_unpacklo_ps(r[6], r[7]);
        let t7 = _mm256_unpackhi_ps(r[6], r[7]);
        let s0 = _mm256_shuffle_ps(t0, t2, 0x44);
        let s1 = _mm256_shuffle_ps(t0, t2, 0xEE);
        let s2 = _mm256_shuffle_ps(t1, t3, 0x44);
        let s3 = _mm256_shuffle_ps(t1, t3, 0xEE);
        let s4 = _mm256_shuffle_ps(t4, t6, 0x44);
        let s5 = _mm256_shuffle_ps(t4, t6, 0xEE);
        let s6 = _mm256_shuffle_ps(t5, t7, 0x44);
        let s7 = _mm256_shuffle_ps(t5, t7, 0xEE);
        _mm256_storeu_ps(dst, _mm256_permute2f128_ps(s0, s4, 0x20));
        _mm256_storeu_ps(dst.add(8), _mm256_permute2f128_ps(s1, s5, 0x20));
        _mm256_storeu_ps(dst.add(16), _mm256_permute2f128_ps(s2, s6, 0x20));
        _mm256_storeu_ps(dst.add(24), _mm256_permute2f128_ps(s3, s7, 0x20));
        _mm256_storeu_ps(dst.add(32), _mm256_permute2f128_ps(s0, s4, 0x31));
        _mm256_storeu_ps(dst.add(40), _mm256_permute2f128_ps(s1, s5, 0x31));
        _mm256_storeu_ps(dst.add(48), _mm256_permute2f128_ps(s2, s6, 0x31));
        _mm256_storeu_ps(dst.add(56), _mm256_permute2f128_ps(s3, s7, 0x31));
    }
}

#[cfg(target_arch = "x86_64")]
mod simd {
    //! Explicit-SIMD tile kernels. Layouts mirror the packing scheme:
    //! `apanel[p*MR + i]`, `bpanel[p*NR + j]`, both already f32; one B
    //! row per depth step is loaded contiguously and each A element is
    //! broadcast against it with a fused multiply-add.
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// Two zmm registers hold an NR-wide tile row; MR rows keep 16 zmm
    /// accumulators (plus two B registers and the broadcast) live across
    /// the whole depth loop — 19 of the 32 zmm registers.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn tile_avx512(
        kc: usize,
        apanel: &[f32],
        bpanel: &[f32],
        acc: &mut [[f32; NR]; MR],
    ) {
        let mut v = [[_mm512_setzero_ps(); 2]; MR];
        for p in 0..kc {
            let b0 = _mm512_loadu_ps(bpanel.as_ptr().add(p * NR));
            let b1 = _mm512_loadu_ps(bpanel.as_ptr().add(p * NR + 16));
            for (i, vi) in v.iter_mut().enumerate() {
                let a = _mm512_set1_ps(*apanel.get_unchecked(p * MR + i));
                vi[0] = _mm512_fmadd_ps(a, b0, vi[0]);
                vi[1] = _mm512_fmadd_ps(a, b1, vi[1]);
            }
        }
        for (row, vi) in acc.iter_mut().zip(v.iter()) {
            _mm512_storeu_ps(row.as_mut_ptr(), vi[0]);
            _mm512_storeu_ps(row.as_mut_ptr().add(16), vi[1]);
        }
    }

    /// 8-lane variant: a tile row is four ymm registers, processed in
    /// 2-row quarters (8 accumulators + 4 B registers + the broadcast)
    /// to stay within 16 ymm registers.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn tile_avx2(kc: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
        const QUARTER: usize = MR / 4;
        for h in 0..4 {
            let r0 = h * QUARTER;
            let mut v = [[_mm256_setzero_ps(); 4]; QUARTER];
            for p in 0..kc {
                let b = [
                    _mm256_loadu_ps(bpanel.as_ptr().add(p * NR)),
                    _mm256_loadu_ps(bpanel.as_ptr().add(p * NR + 8)),
                    _mm256_loadu_ps(bpanel.as_ptr().add(p * NR + 16)),
                    _mm256_loadu_ps(bpanel.as_ptr().add(p * NR + 24)),
                ];
                for (i, vi) in v.iter_mut().enumerate() {
                    let a = _mm256_set1_ps(*apanel.get_unchecked(p * MR + r0 + i));
                    for (acc_q, &bq) in vi.iter_mut().zip(b.iter()) {
                        *acc_q = _mm256_fmadd_ps(a, bq, *acc_q);
                    }
                }
            }
            for (i, vi) in v.iter().enumerate() {
                for (q, acc_q) in vi.iter().enumerate() {
                    _mm256_storeu_ps(acc[r0 + i].as_mut_ptr().add(q * 8), *acc_q);
                }
            }
        }
    }
}

/// Copy the strict upper triangle onto the lower one.
fn mirror_upper_to_lower(out: &mut [f32], n: usize) {
    for i in 0..n {
        for j in (i + 1)..n {
            out[j * n + i] = out[i * n + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::half::f32_to_bf16;
    use crate::rng::Rng64;

    fn random_bf16(len: usize, rng: &mut Rng64) -> Vec<u16> {
        (0..len).map(|_| f32_to_bf16(rng.normal_f32())).collect()
    }

    /// f64 reference over the *widened* bf16 values.
    fn reference(a: &[u16], b: &[u16], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += bf16_to_f32(a[i * k + p]) as f64 * bf16_to_f32(b[p * n + j]) as f64;
                }
                c[i * n + j] = acc as f32;
            }
        }
        c
    }

    fn max_diff(x: &[f32], y: &[f32]) -> f32 {
        x.iter()
            .zip(y)
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }

    #[test]
    fn packed_matches_reference_across_shapes() {
        let mut rng = Rng64::new(21);
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (64, 64, 64),
            (65, 600, 33),
            (100, 300, 100),
        ] {
            let a = random_bf16(m * k, &mut rng);
            let b = random_bf16(k * n, &mut rng);
            let mut out = vec![f32::NAN; m * n];
            gemm_bf16_into(Bf16View::new(&a, m, k), Bf16View::new(&b, k, n), &mut out);
            let r = reference(&a, &b, m, k, n);
            let d = max_diff(&out, &r);
            assert!(d < 1e-1, "({m},{k},{n}) diff {d}");
        }
    }

    #[test]
    fn transposed_views_match_materialized_transpose() {
        let mut rng = Rng64::new(22);
        let (m, k, n) = (70, 130, 90);
        let at = random_bf16(k * m, &mut rng);
        let bt = random_bf16(n * k, &mut rng);
        let mut a = vec![0u16; m * k];
        for i in 0..m {
            for p in 0..k {
                a[i * k + p] = at[p * m + i];
            }
        }
        let mut b = vec![0u16; k * n];
        for p in 0..k {
            for j in 0..n {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let mut out_t = vec![f32::NAN; m * n];
        gemm_bf16_into(Bf16View::t(&at, k, m), Bf16View::t(&bt, n, k), &mut out_t);
        let mut out_n = vec![f32::NAN; m * n];
        gemm_bf16_into(Bf16View::new(&a, m, k), Bf16View::new(&b, k, n), &mut out_n);
        assert_eq!(out_t, out_n, "views must be bitwise path-equal");
    }

    #[test]
    fn k_zero_zeroes_output() {
        let mut out = vec![f32::NAN; 6];
        gemm_bf16_into(Bf16View::new(&[], 2, 0), Bf16View::new(&[], 0, 3), &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn symmetric_gram_is_bitwise_symmetric() {
        let mut rng = Rng64::new(23);
        let (k, n) = (200, 150);
        let x = random_bf16(k * n, &mut rng);
        let mut g = vec![f32::NAN; n * n];
        gemm_bf16_symmetric_into(Bf16View::t(&x, k, n), Bf16View::new(&x, k, n), &mut g);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(g[i * n + j].to_bits(), g[j * n + i].to_bits());
            }
        }
        let mut full = vec![f32::NAN; n * n];
        gemm_bf16_into(Bf16View::t(&x, k, n), Bf16View::new(&x, k, n), &mut full);
        assert!(max_diff(&g, &full) < 1e-2);
    }

    #[test]
    fn simd_tile_is_bitwise_equal_to_scalar() {
        let mut rng = Rng64::new(25);
        let kc = 97;
        let apanel: Vec<f32> = (0..kc * MR).map(|_| rng.normal_f32()).collect();
        let bpanel: Vec<f32> = (0..kc * NR).map(|_| rng.normal_f32()).collect();
        let mut scalar = [[0.0f32; NR]; MR];
        tile_scalar(kc, &apanel, &bpanel, &mut scalar);
        let mut dispatched = [[0.0f32; NR]; MR];
        compute_tile(kc, &apanel, &bpanel, &mut dispatched);
        for (s, d) in scalar.iter().flatten().zip(dispatched.iter().flatten()) {
            assert_eq!(s.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn deterministic_across_pool_sizes() {
        let mut rng = Rng64::new(24);
        let (m, k, n) = (300, 300, 300);
        let a = random_bf16(m * k, &mut rng);
        let b = random_bf16(k * n, &mut rng);
        let mut outs: Vec<Vec<f32>> = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            rayon::set_pool_threads(threads);
            let mut out = vec![f32::NAN; m * n];
            gemm_bf16_into(Bf16View::new(&a, m, k), Bf16View::new(&b, k, n), &mut out);
            outs.push(out);
        }
        for o in &outs[1..] {
            assert_eq!(&outs[0], o, "results must be bitwise pool-size independent");
        }
    }

    #[test]
    fn half_matrix_gram_matches_f32_gram_numerically() {
        let mut rng = Rng64::new(26);
        let (m, n) = (240, 60);
        // bf16-representable inputs: the f32 Gram and the bf16 Gram see
        // the exact same operand values, differing only in accumulation
        // (fused vs unfused) — so agreement is tight.
        let data: Vec<f32> = (0..m * n)
            .map(|_| bf16_to_f32(f32_to_bf16(rng.normal_f32())))
            .collect();
        let mf = Matrix::from_vec(m, n, data.clone());
        let hf = HalfMatrix::from_f32(&data, m, n);
        let gf = mf.gram();
        let mut gh = Matrix::zeros(n, n);
        hf.gram_into(&mut gh);
        let d = max_diff(gf.as_slice(), gh.as_slice());
        assert!(d < 1e-2, "bf16 gram deviates from f32 gram by {d}");
        hf.recycle();
    }
}
