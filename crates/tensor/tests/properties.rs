//! Property-based tests over the linear-algebra substrate.
//!
//! These are the algebraic invariants the K-FAC math rests on: the
//! Kronecker identities of §II-C, spectral reconstruction, and
//! factorization round-trips.

use kfac_tensor::matmul::reference_matmul;
use kfac_tensor::{eigh, invert, kron, kron_matvec, Matrix, Rng64};
use proptest::prelude::*;

/// Strategy: a random matrix with entries in [-3, 3].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: a random SPD matrix built as `XᵀX/k + γI`.
fn spd_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    (
        proptest::collection::vec(-2.0f32..2.0, 2 * n * n),
        0.05f32..1.0,
    )
        .prop_map(move |(data, damp)| {
            let x = Matrix::from_vec(2 * n, n, data);
            let mut a = x.gram();
            a.scale(1.0 / (2 * n) as f32);
            a.add_diag(damp);
            a
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GEMM is associative with the naive reference (checked via identity
    /// distribution over random matrices): (A·B)·C == A·(B·C).
    #[test]
    fn matmul_associative(
        a in matrix_strategy(4, 6),
        b in matrix_strategy(6, 5),
        c in matrix_strategy(5, 3),
    ) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }

    /// Transposition reverses products: (A·B)ᵀ == Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_reverses(
        a in matrix_strategy(5, 7),
        b in matrix_strategy(7, 4),
    ) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    /// matmul_tn / matmul_nt agree with explicit transposes.
    #[test]
    fn fused_transpose_kernels(
        a in matrix_strategy(8, 5),
        b in matrix_strategy(8, 6),
        c in matrix_strategy(6, 5),
    ) {
        let tn = a.matmul_tn(&b);
        prop_assert!(tn.max_abs_diff(&a.transpose().matmul(&b)) < 1e-3);
        let nt = a.matmul_nt(&c);
        prop_assert!(nt.max_abs_diff(&a.matmul(&c.transpose())) < 1e-3);
    }

    /// Eigendecomposition reconstructs the input: Q Λ Qᵀ == A.
    #[test]
    fn eigh_reconstructs(a in spd_strategy(8)) {
        let e = eigh(&a).unwrap();
        let recon = e.reconstruct();
        prop_assert!(recon.max_abs_diff(&a) < 1e-3 * a.max_abs().max(1.0));
    }

    /// Eigenvector bases are orthonormal: QᵀQ == I.
    #[test]
    fn eigh_orthonormal(a in spd_strategy(7)) {
        let e = eigh(&a).unwrap();
        let qtq = e.eigenvectors.matmul_tn(&e.eigenvectors);
        prop_assert!(qtq.max_abs_diff(&Matrix::identity(7)) < 1e-4);
    }

    /// SPD matrices have strictly positive spectra.
    #[test]
    fn spd_positive_spectrum(a in spd_strategy(6)) {
        let e = eigh(&a).unwrap();
        prop_assert!(e.eigenvalues.iter().all(|&l| l > 0.0));
    }

    /// Gauss–Jordan inverse satisfies A·A⁻¹ == I.
    #[test]
    fn inverse_round_trip(a in spd_strategy(6)) {
        let inv = invert(&a).unwrap();
        let prod = a.matmul(&inv);
        prop_assert!(prod.max_abs_diff(&Matrix::identity(6)) < 5e-3);
    }

    /// Cholesky inverse agrees with Gauss–Jordan on SPD inputs.
    #[test]
    fn cholesky_matches_gauss_jordan(a in spd_strategy(6)) {
        let gj = invert(&a).unwrap();
        let ch = kfac_tensor::cholesky::spd_inverse(&a).unwrap();
        prop_assert!(gj.max_abs_diff(&ch) < 5e-3);
    }

    /// The paper's Eq. 8: (A ⊗ B)⁻¹ == A⁻¹ ⊗ B⁻¹.
    #[test]
    fn kron_inverse_identity(a in spd_strategy(3), b in spd_strategy(2)) {
        let lhs = invert(&kron(&a, &b)).unwrap();
        let rhs = kron(&invert(&a).unwrap(), &invert(&b).unwrap());
        prop_assert!(lhs.max_abs_diff(&rhs) < 5e-2 * rhs.max_abs().max(1.0));
    }

    /// The paper's Eq. 10 vec-trick: (A ⊗ B) vec(X) == vec(A X Bᵀ).
    #[test]
    fn kron_vec_trick(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(2, 5),
        x in matrix_strategy(4, 5),
    ) {
        let fast = kron_matvec(&a, &b, &x);
        let dense = kron(&a, &b).matvec(&kfac_tensor::kron::vec_rowmajor(&x));
        for (f, d) in fast.as_slice().iter().zip(&dense) {
            prop_assert!((f - d).abs() < 1e-2, "{} vs {}", f, d);
        }
    }

    /// Gram kernels are symmetric and PSD (non-negative diagonal, spectrum ≥ 0).
    #[test]
    fn gram_is_psd(a in matrix_strategy(10, 6)) {
        let g = a.gram();
        prop_assert_eq!(g.asymmetry(), 0.0);
        let e = eigh(&g).unwrap();
        prop_assert!(e.eigenvalues.iter().all(|&l| l > -1e-3));
    }

    /// Shuffle produces a permutation for arbitrary seeds and lengths.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), len in 0usize..200) {
        let mut rng = Rng64::new(seed);
        let mut xs: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }
}

// ---------------------------------------------------------------------------
// Packed GEMM vs the naive reference on adversarial shapes.
//
// The packed kernel has edge behaviour at every tile boundary (MR=8 rows,
// NR=16 columns, MC=64-row parallel blocks, KC=256-deep cache blocks) plus
// degenerate dimensions (empty operands, row/column vectors, k=0). These
// tests drive exactly those edges against the f64-accumulating reference
// and pin the structural-determinism guarantee across pool sizes.
// ---------------------------------------------------------------------------

/// Dimensions straddling every packing edge: empty, vectors, exact tile
/// multiples, and off-by-one values around the MR/NR/MC boundaries.
fn edge_dim() -> impl Strategy<Value = usize> {
    const DIMS: [usize; 13] = [0, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65, 100];
    (0usize..DIMS.len()).prop_map(|i| DIMS[i])
}

fn seeded(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::new(seed);
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.normal_f32()).collect(),
    )
}

/// Absolute tolerance for an f32 dot of length `k` against the f64
/// reference, for unit-normal entries.
fn dot_tol(k: usize) -> f32 {
    1e-4 * ((k as f32).sqrt() + 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Packed `A·B` matches the naive f64 reference on adversarial shapes.
    #[test]
    fn packed_matmul_matches_reference(
        m in edge_dim(), k in edge_dim(), n in edge_dim(), seed in any::<u64>(),
    ) {
        let a = seeded(m, k, seed);
        let b = seeded(k, n, seed ^ 0x9e3779b97f4a7c15);
        let c = a.matmul(&b);
        let r = reference_matmul(&a, &b);
        prop_assert_eq!(c.shape(), (m, n));
        prop_assert!(c.max_abs_diff(&r) <= dot_tol(k), "diff {}", c.max_abs_diff(&r));
    }

    /// Fused-transpose kernels match the reference through explicit
    /// transposes on the same adversarial shapes.
    #[test]
    fn packed_transpose_kernels_match_reference(
        m in edge_dim(), k in edge_dim(), n in edge_dim(), seed in any::<u64>(),
    ) {
        let at = seeded(k, m, seed);
        let b = seeded(k, n, seed ^ 0xdeadbeef);
        let tn = at.matmul_tn(&b);
        prop_assert!(tn.max_abs_diff(&reference_matmul(&at.transpose(), &b)) <= dot_tol(k));

        let a = seeded(m, k, seed ^ 0xabcdef);
        let bt = seeded(n, k, seed ^ 0x123456);
        let nt = a.matmul_nt(&bt);
        prop_assert!(nt.max_abs_diff(&reference_matmul(&a, &bt.transpose())) <= dot_tol(k));
    }

    /// Gram kernels match the reference and are *bitwise* symmetric on
    /// adversarial shapes (the mirror pass must cover every tile split).
    #[test]
    fn packed_gram_matches_reference(
        rows in edge_dim(), cols in edge_dim(), seed in any::<u64>(),
    ) {
        let x = seeded(rows, cols, seed);
        let g = x.gram();
        prop_assert_eq!(g.asymmetry(), 0.0);
        prop_assert!(g.max_abs_diff(&reference_matmul(&x.transpose(), &x)) <= dot_tol(rows));

        let gnt = x.gram_nt();
        prop_assert_eq!(gnt.asymmetry(), 0.0);
        prop_assert!(gnt.max_abs_diff(&reference_matmul(&x, &x.transpose())) <= dot_tol(cols));
    }

    /// Results are bitwise identical across pool sizes 1/2/4/8 — the
    /// structural-determinism guarantee the distributed trainer's
    /// cross-rank reproducibility rests on.
    #[test]
    fn packed_gemm_bitwise_deterministic_across_pool_sizes(
        m in edge_dim(), k in edge_dim(), n in edge_dim(), seed in any::<u64>(),
    ) {
        let a = seeded(m, k, seed);
        let b = seeded(k, n, seed ^ 0x5bf03635);
        let mut products: Vec<Matrix> = Vec::new();
        let mut grams: Vec<Matrix> = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            rayon::set_pool_threads(threads);
            products.push(a.matmul(&b));
            grams.push(a.gram());
        }
        rayon::set_pool_threads(1);
        for p in &products[1..] {
            prop_assert_eq!(p.as_slice(), products[0].as_slice());
        }
        for g in &grams[1..] {
            prop_assert_eq!(g.as_slice(), grams[0].as_slice());
        }
    }
}

/// Deep-`k` products cross multiple KC=256 cache blocks — the first-touch
/// store/accumulate split in the micro-kernel must hand off correctly at
/// every block seam (proptest shapes above stay below one block).
#[test]
fn packed_gemm_crosses_kc_blocks() {
    for (m, k, n) in [(9, 255, 17), (70, 256, 33), (65, 257, 16), (130, 600, 31)] {
        let a = seeded(m, k, 42);
        let b = seeded(k, n, 43);
        let c = a.matmul(&b);
        let r = reference_matmul(&a, &b);
        assert!(
            c.max_abs_diff(&r) <= dot_tol(k),
            "({m},{k},{n}) diff {}",
            c.max_abs_diff(&r)
        );
    }
}
