//! Property-based tests over the half-precision substrate.
//!
//! The mixed-precision stack leans on two guarantees: the f32↔bf16/f16
//! conversions are round-to-nearest-even with the textbook error bound,
//! and the bf16-packed f32-accumulate GEMM is bitwise deterministic
//! regardless of worker-pool size (the cross-rank reproducibility the
//! distributed trainer requires). Both are pinned here over randomized
//! inputs, alongside the NaN/Inf/subnormal edge cases of the encodings.

use kfac_tensor::{bf16_to_f32, f16_to_f32, f32_to_bf16, f32_to_f16, HalfMatrix, Matrix, Rng64};
use proptest::prelude::*;

/// Strategy: arbitrary f32 bit patterns (all exponents, both signs),
/// including NaN/Inf/subnormal encodings.
fn any_bits() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

/// Strategy: a finite normal f32 spanning the full bf16/f16 overlap
/// range, assembled from sign/exponent/mantissa so every binade is hit
/// (a plain uniform range would almost never sample small magnitudes).
fn normal_in(exp_lo: i32, exp_hi: i32) -> impl Strategy<Value = f32> {
    (any::<bool>(), exp_lo..(exp_hi + 1), 0u32..(1u32 << 23)).prop_map(|(neg, e, mant)| {
        let bits = (((e + 127) as u32) << 23) | mant | if neg { 1 << 31 } else { 0 };
        f32::from_bits(bits)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// bf16-representable values round-trip f32 → bf16 → f32 bit-exactly
    /// (bf16 is a prefix truncation of f32, so widening any finite bf16
    /// word yields a value the RNE narrow must map straight back).
    #[test]
    fn bf16_representable_round_trips_exactly(word in any::<u16>()) {
        let x = bf16_to_f32(word);
        prop_assume!(x.is_finite());
        prop_assert_eq!(f32_to_bf16(x), word);
    }

    /// f16-representable values round-trip f32 → f16 → f32 bit-exactly,
    /// including f16 subnormals.
    #[test]
    fn f16_representable_round_trips_exactly(word in any::<u16>()) {
        let x = f16_to_f32(word);
        prop_assume!(x.is_finite());
        prop_assert_eq!(f32_to_f16(x), word);
    }

    /// The bf16 RNE narrow keeps relative error ≤ 2⁻⁸ on normal values
    /// (half an ulp of a 7-bit-mantissa significand).
    #[test]
    fn bf16_relative_error_bound(x in normal_in(-126, 127)) {
        let back = bf16_to_f32(f32_to_bf16(x));
        prop_assert!(back.is_finite(), "{x} widened non-finite");
        let err = (back as f64 - x as f64).abs();
        prop_assert!(
            err <= x.abs() as f64 * (1.0 / 256.0),
            "x={x} back={back} rel={}", err / x.abs() as f64
        );
    }

    /// The f16 RNE narrow keeps relative error ≤ 2⁻¹⁰ on values inside
    /// f16's normal range (exponents −14..=15, away from the 65504
    /// saturation edge).
    #[test]
    fn f16_relative_error_bound(x in normal_in(-14, 14)) {
        let back = f16_to_f32(f32_to_f16(x));
        prop_assert!(back.is_finite(), "{x} widened non-finite");
        let err = (back as f64 - x as f64).abs();
        prop_assert!(
            err <= x.abs() as f64 * (1.0 / 1024.0),
            "x={x} back={back} rel={}", err / x.abs() as f64
        );
    }

    /// Total classification behaviour over arbitrary bit patterns: NaN
    /// maps to NaN, infinities behave per format (bf16 keeps them, f16
    /// saturates), and everything else stays finite with the right sign.
    #[test]
    fn conversions_classify_arbitrary_bits(x in any_bits()) {
        let b = bf16_to_f32(f32_to_bf16(x));
        let h = f16_to_f32(f32_to_f16(x));
        if x.is_nan() {
            prop_assert!(b.is_nan());
            prop_assert!(h.is_nan());
        } else if x.is_infinite() {
            prop_assert!(b.is_infinite() && b.signum() == x.signum());
            // f16 narrow saturates: ±Inf → ±65504.
            prop_assert_eq!(h, 65504.0f32.copysign(x));
        } else {
            // bf16 can overflow to Inf only beyond f32::MAX/2ish rounding;
            // check sign preservation when nonzero either way.
            prop_assert!(!b.is_nan());
            prop_assert!(h.is_finite());
            prop_assert!(h.abs() <= 65504.0);
            if b != 0.0 && x != 0.0 {
                prop_assert_eq!(b.signum(), x.signum());
            }
            if h != 0.0 && x != 0.0 {
                prop_assert_eq!(h.signum(), x.signum());
            }
        }
    }
}

/// Explicit edge-case pins: NaN, ±Inf, subnormals, signed zero, and the
/// format boundaries (tie-to-even behaviour is covered bit-exactly by
/// the round-trip properties above).
#[test]
fn conversion_edge_cases() {
    // NaN survives both narrows as NaN (bf16 quiets the payload).
    assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
    assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
    // Infinities: bf16 preserves, f16 saturates to ±65504.
    assert_eq!(bf16_to_f32(f32_to_bf16(f32::INFINITY)), f32::INFINITY);
    assert_eq!(
        bf16_to_f32(f32_to_bf16(f32::NEG_INFINITY)),
        f32::NEG_INFINITY
    );
    assert_eq!(f16_to_f32(f32_to_f16(f32::INFINITY)), 65504.0);
    assert_eq!(f16_to_f32(f32_to_f16(f32::NEG_INFINITY)), -65504.0);
    // Values beyond the f16 range saturate rather than overflow.
    assert_eq!(f16_to_f32(f32_to_f16(1e30)), 65504.0);
    assert_eq!(f16_to_f32(f32_to_f16(-7e4)), -65504.0);
    // Signed zero round-trips in both formats.
    assert_eq!(f32_to_bf16(-0.0).to_be_bytes()[0] & 0x80, 0x80);
    assert_eq!(bf16_to_f32(f32_to_bf16(-0.0)), 0.0);
    assert_eq!(f16_to_f32(f32_to_f16(-0.0)), 0.0);
    // f32 subnormals: far below both formats' subnormal ranges → flush
    // toward zero without producing garbage.
    let tiny = f32::from_bits(1); // smallest positive f32 subnormal
    assert_eq!(f16_to_f32(f32_to_f16(tiny)), 0.0);
    assert!(bf16_to_f32(f32_to_bf16(tiny)).abs() <= f32::MIN_POSITIVE);
    // f16 subnormal range (2⁻²⁴ ≤ |x| < 2⁻¹⁴) is representable and
    // round-trips through the dedicated subnormal paths.
    let sub = 3.0e-6f32;
    let back = f16_to_f32(f32_to_f16(sub));
    assert!(back > 0.0 && (back - sub).abs() <= 6e-8, "{back}");
    // Smallest f16 subnormal exactly.
    let ulp16 = 5.960_464_5e-8f32; // 2^-24
    assert_eq!(f16_to_f32(f32_to_f16(ulp16)), ulp16);
}

// ---------------------------------------------------------------------------
// bf16 GEMM determinism across pool sizes.
// ---------------------------------------------------------------------------

/// Dimensions straddling the bf16 kernel's tile edges (MR=8 rows,
/// NR=32 columns, KC=128-deep panels, MC=64-row blocks).
fn edge_dim() -> impl Strategy<Value = usize> {
    const DIMS: [usize; 12] = [0, 1, 3, 7, 8, 9, 31, 32, 33, 64, 65, 130];
    (0usize..DIMS.len()).prop_map(|i| DIMS[i])
}

fn seeded_half(rows: usize, cols: usize, seed: u64) -> HalfMatrix {
    let mut rng = Rng64::new(seed);
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.normal_f32()).collect();
    HalfMatrix::from_f32(&data, rows, cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// bf16 Gram and A·Bᵀ products are bitwise identical across pool
    /// sizes 1/2/4/8 — the mixed-precision kernels inherit the packed
    /// f32 engine's structural-determinism guarantee.
    #[test]
    fn bf16_gemm_bitwise_deterministic_across_pool_sizes(
        m in edge_dim(), k in edge_dim(), n in edge_dim(), seed in any::<u64>(),
    ) {
        let a = seeded_half(m, k, seed);
        let b = seeded_half(n, k, seed ^ 0x5bf03635);
        let mut grams: Vec<Matrix> = Vec::new();
        let mut prods: Vec<Matrix> = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            rayon::set_pool_threads(threads);
            let mut g = Matrix::zeros(k, k);
            a.gram_into(&mut g);
            grams.push(g);
            let mut p = Matrix::zeros(m, n);
            a.matmul_nt_into(&b, &mut p);
            prods.push(p);
        }
        rayon::set_pool_threads(1);
        for g in &grams[1..] {
            prop_assert_eq!(g.as_slice(), grams[0].as_slice());
        }
        for p in &prods[1..] {
            prop_assert_eq!(p.as_slice(), prods[0].as_slice());
        }
    }

    /// The bf16 Gram agrees with widening the storage to f32 and running
    /// the f32 Gram — same operands, f32 accumulation on both sides — to
    /// a tight tolerance (the engines differ only in summation order).
    #[test]
    fn bf16_gram_matches_widened_f32_gram(
        rows in edge_dim(), cols in edge_dim(), seed in any::<u64>(),
    ) {
        let a = seeded_half(rows, cols, seed);
        let mut g16 = Matrix::zeros(cols, cols);
        a.gram_into(&mut g16);
        let g32 = a.to_matrix().gram();
        let tol = 1e-4 * ((rows as f32).sqrt() + 1.0);
        prop_assert!(
            g16.max_abs_diff(&g32) <= tol,
            "diff {} tol {}", g16.max_abs_diff(&g32), tol
        );
        prop_assert_eq!(g16.asymmetry(), 0.0);
    }
}
