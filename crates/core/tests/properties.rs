//! Property tests for the K-FAC math and distribution invariants.

use kfac::config::PlacementPolicy;
use kfac::distribution::{assign_factors, assign_layers_lw, factor_descs, makespan, per_rank_cost};
use kfac::math::{
    decompose_factor, invert_factor, kl_clip_nu, precondition_eigen, precondition_inverse,
    EigenPair, InversePair,
};
use kfac_tensor::{kron, Matrix};
use proptest::prelude::*;

/// Strategy: a random SPD factor of dimension `n`.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, 2 * n * n).prop_map(move |data| {
        let x = Matrix::from_vec(2 * n, n, data);
        let mut a = x.gram();
        a.scale(1.0 / (2 * n) as f32);
        a
    })
}

fn dense_eigen_reference(a: &Matrix, g: &Matrix, grad: &Matrix, gamma: f32) -> Matrix {
    let mut big = kron(g, a);
    big.add_diag(gamma);
    let inv = kfac_tensor::invert(&big).expect("damped kron invertible");
    Matrix::from_vec(grad.rows(), grad.cols(), inv.matvec(grad.as_slice()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The eigen path computes exactly (G ⊗ A + γI)⁻¹ vec(∇L) for any
    /// PSD factors, any gradient, any positive damping.
    #[test]
    fn eigen_path_equals_dense_kronecker(
        a in spd(4),
        g in spd(3),
        grad in proptest::collection::vec(-3.0f32..3.0, 12),
        gamma in 0.01f32..0.5,
    ) {
        let grad = Matrix::from_vec(3, 4, grad);
        let pair = EigenPair {
            a: decompose_factor(&a).expect("eig"),
            g: decompose_factor(&g).expect("eig"),
        };
        let fast = precondition_eigen(&pair, &grad, gamma);
        let dense = dense_eigen_reference(&a, &g, &grad, gamma);
        prop_assert!(
            fast.max_abs_diff(&dense) < 2e-2 * dense.max_abs().max(1.0),
            "diff {}", fast.max_abs_diff(&dense)
        );
    }

    /// The explicit-inverse path equals (G+γI)⁻¹ ∇L (A+γI)⁻¹ against
    /// dense f64 inverses within FP32 tolerance.
    #[test]
    fn inverse_path_matches_dense_separate_damping(
        a in spd(4),
        g in spd(3),
        grad in proptest::collection::vec(-3.0f32..3.0, 12),
        gamma in 0.05f32..0.5,
    ) {
        let grad = Matrix::from_vec(3, 4, grad);
        let pair = InversePair {
            a_inv: invert_factor(&a, gamma).expect("inv"),
            g_inv: invert_factor(&g, gamma).expect("inv"),
        };
        let fast = precondition_inverse(&pair, &grad);
        let mut ad = a.clone();
        ad.add_diag(gamma);
        let mut gd = g.clone();
        gd.add_diag(gamma);
        let dense = kfac_tensor::invert(&gd).expect("gd")
            .matmul(&grad)
            .matmul(&kfac_tensor::invert(&ad).expect("ad"));
        prop_assert!(fast.max_abs_diff(&dense) < 5e-2 * dense.max_abs().max(1.0));
    }

    /// Preconditioning shrinks high-curvature directions: the norm of the
    /// preconditioned gradient never exceeds ‖∇L‖/γ.
    #[test]
    fn eigen_precondition_norm_bound(
        a in spd(3),
        g in spd(3),
        grad in proptest::collection::vec(-3.0f32..3.0, 9),
        gamma in 0.05f32..1.0,
    ) {
        let grad = Matrix::from_vec(3, 3, grad);
        let pair = EigenPair {
            a: decompose_factor(&a).expect("eig"),
            g: decompose_factor(&g).expect("eig"),
        };
        let out = precondition_eigen(&pair, &grad, gamma);
        prop_assert!(
            out.frobenius_norm() <= grad.frobenius_norm() / gamma * 1.01,
            "‖out‖ {} vs bound {}", out.frobenius_norm(), grad.frobenius_norm() / gamma
        );
    }

    /// KL-clip ν is always in (0, 1] and never produces NaN.
    #[test]
    fn kl_clip_bounded(
        p in proptest::collection::vec(-10.0f32..10.0, 16),
        g in proptest::collection::vec(-10.0f32..10.0, 16),
        kappa in 1e-5f32..1.0,
        lr in 0.0f32..2.0,
    ) {
        let pm = Matrix::from_vec(4, 4, p);
        let gm = Matrix::from_vec(4, 4, g);
        let nu = kl_clip_nu([(&pm, &gm)].into_iter(), kappa, lr);
        prop_assert!(nu.is_finite());
        prop_assert!(nu > 0.0 && nu <= 1.0);
    }

    /// Every placement policy assigns every factor to a valid rank, and
    /// the total cost is conserved.
    #[test]
    fn placement_conserves_work(
        dims in proptest::collection::vec((1usize..300, 1usize..300), 1..30),
        world in 1usize..20,
    ) {
        let factors = factor_descs(&dims);
        for policy in [PlacementPolicy::RoundRobin, PlacementPolicy::SizeBalanced] {
            let assignment = assign_factors(policy, &factors, world);
            prop_assert_eq!(assignment.len(), factors.len());
            prop_assert!(assignment.iter().all(|&r| r < world));
            let loads = per_rank_cost(&factors, &assignment, world);
            let total: u64 = factors.iter().map(|f| f.eig_cost()).sum();
            prop_assert_eq!(loads.iter().sum::<u64>(), total);
        }
    }

    /// LPT's makespan never exceeds round-robin's.
    #[test]
    fn lpt_never_worse_than_round_robin(
        dims in proptest::collection::vec((1usize..300, 1usize..300), 1..30),
        world in 1usize..20,
    ) {
        let factors = factor_descs(&dims);
        let rr = assign_factors(PlacementPolicy::RoundRobin, &factors, world);
        let lpt = assign_factors(PlacementPolicy::SizeBalanced, &factors, world);
        prop_assert!(makespan(&factors, &lpt, world) <= makespan(&factors, &rr, world));
    }

    /// LPT is within the classic 4/3 − 1/(3m) guarantee of optimal, which
    /// is itself lower-bounded by total/m and by the largest item.
    #[test]
    fn lpt_respects_approximation_guarantee(
        dims in proptest::collection::vec((1usize..300, 1usize..300), 1..30),
        world in 1usize..16,
    ) {
        let factors = factor_descs(&dims);
        let lpt = assign_factors(PlacementPolicy::SizeBalanced, &factors, world);
        let ms = makespan(&factors, &lpt, world) as f64;
        let total: u64 = factors.iter().map(|f| f.eig_cost()).sum();
        let biggest = factors.iter().map(|f| f.eig_cost()).max().unwrap_or(0);
        let lower = (total as f64 / world as f64).max(biggest as f64);
        let bound = (4.0 / 3.0 - 1.0 / (3.0 * world as f64)) * lower;
        prop_assert!(ms <= bound * 1.0001, "makespan {ms} exceeds LPT bound {bound}");
    }

    /// Layer-wise assignment covers all layers and wraps ranks.
    #[test]
    fn lw_assignment_covers(num_layers in 1usize..200, world in 1usize..32) {
        let owners = assign_layers_lw(num_layers, world);
        prop_assert_eq!(owners.len(), num_layers);
        prop_assert!(owners.iter().all(|&r| r < world));
        // Consecutive layers go to consecutive ranks.
        for (li, &o) in owners.iter().enumerate() {
            prop_assert_eq!(o, li % world);
        }
    }

    /// Elastic shrink contract: after any single rank of worlds 2–8 is
    /// removed and the survivors re-rank contiguously, recomputing the
    /// factor assignment at the new world size is **total** (every
    /// factor owned exactly once), **contiguous** (owners fall in
    /// `0..world-1`, with every surviving rank used when there are
    /// enough factors), and **deterministic in the new size alone** —
    /// survivors agree bitwise no matter which rank died, without
    /// communicating. Shrink-world recovery restores from a checkpoint
    /// and recomputes assignments locally; this is the property that
    /// makes that sound.
    #[test]
    fn factor_assignment_remaps_cleanly_under_any_single_rank_removal(
        dims in proptest::collection::vec((1usize..128, 1usize..128), 1..16),
        world in 2usize..9,
    ) {
        let factors = factor_descs(&dims);
        for policy in [PlacementPolicy::RoundRobin, PlacementPolicy::SizeBalanced] {
            let boot = assign_factors(policy, &factors, world);
            let mut shrunk_views = Vec::new();
            for removed in 0..world {
                // Each survivor recomputes from only (factors, new world).
                let remapped = assign_factors(policy, &factors, world - 1);
                // Total: every factor assigned exactly once.
                prop_assert_eq!(remapped.len(), factors.len());
                // Contiguous: owners are valid new ranks…
                prop_assert!(remapped.iter().all(|&r| r < world - 1));
                // …and no surviving rank is idle when work suffices.
                if factors.len() >= world - 1 {
                    for r in 0..world - 1 {
                        prop_assert!(
                            remapped.contains(&r),
                            "rank {} idle after removing {} (policy {:?})",
                            r, removed, policy
                        );
                    }
                }
                shrunk_views.push(remapped);
            }
            // Removal-invariant + deterministic: every survivor lands on
            // the identical assignment regardless of which rank died.
            for v in &shrunk_views[1..] {
                prop_assert_eq!(v, &shrunk_views[0]);
            }
            // And the boot assignment itself is reproducible (survivors
            // recomputing the *old* view for fencing agree too).
            prop_assert_eq!(&boot, &assign_factors(policy, &factors, world));
        }
    }

    /// The same shrink contract for the layer-wise strategy.
    #[test]
    fn lw_assignment_remaps_cleanly_under_any_single_rank_removal(
        num_layers in 1usize..64,
        world in 2usize..9,
    ) {
        let mut shrunk_views = Vec::new();
        for _removed in 0..world {
            let remapped = assign_layers_lw(num_layers, world - 1);
            prop_assert_eq!(remapped.len(), num_layers);
            prop_assert!(remapped.iter().all(|&r| r < world - 1));
            if num_layers >= world - 1 {
                for r in 0..world - 1 {
                    prop_assert!(remapped.contains(&r));
                }
            }
            shrunk_views.push(remapped);
        }
        for v in &shrunk_views[1..] {
            prop_assert_eq!(v, &shrunk_views[0]);
        }
    }
}
