//! Cross-rank correctness tests for the distributed K-FAC preconditioner.
//!
//! The key invariant of Algorithm 1: the *distributed* computation is a
//! pure work-partitioning of the single-rank computation. With identical
//! per-rank gradients, every strategy (Opt, Lw), placement policy and
//! world size must produce identical preconditioned gradients — the same
//! check the paper performs by verifying all variants converge identically
//! (§VI-C3: "We verify that all K-FAC-lw and K-FAC-opt experiments
//! converge to [the same] validation accuracy").

use kfac::{DistStrategy, InversionMethod, Kfac, KfacConfig, PlacementPolicy};
use kfac_collectives::{Communicator, LocalComm, ThreadComm};
use kfac_nn::{layer::Mode, CrossEntropyLoss, Layer, Linear, ReLU, Sequential};
use kfac_tensor::{Rng64, Tensor4};
use std::thread;

/// Build a small MLP (same weights for every caller thanks to the seed).
fn build_model(seed: u64) -> Sequential {
    let mut rng = Rng64::new(seed);
    Sequential::from_layers(vec![
        Box::new(Linear::new("fc1", 6, 8, true, &mut rng)),
        Box::new(ReLU::new()),
        Box::new(Linear::new("fc2", 8, 4, true, &mut rng)),
    ])
}

/// One forward/backward on a fixed batch with capture enabled as asked.
fn run_fwd_bwd(model: &mut Sequential, capture: bool, data_seed: u64) {
    let mut rng = Rng64::new(data_seed);
    let x = Tensor4::from_vec(8, 6, 1, 1, (0..48).map(|_| rng.normal_f32()).collect());
    let targets: Vec<usize> = (0..8).map(|i| i % 4).collect();
    model.zero_grad();
    model.set_capture(capture);
    let out = model.forward(&x, Mode::Train);
    let (_, grad) = CrossEntropyLoss::new().forward(&out, &targets);
    let _ = model.backward(&grad);
}

/// Preconditioned gradients after `steps` K-FAC steps on one rank of a
/// group, as a flat vector.
fn run_rank(comm: &dyn Communicator, cfg: KfacConfig, steps: usize) -> Vec<f32> {
    let mut model = build_model(42);
    let mut kfac = Kfac::new(&mut model, cfg);
    for s in 0..steps {
        // Identical data on every rank ⇒ allreduced gradient == local.
        run_fwd_bwd(&mut model, kfac.needs_capture(), 100 + s as u64);
        kfac.step(&mut model, comm, 0.1);
    }
    let mut flat = Vec::new();
    model.visit_params("", &mut |_, _, g| flat.extend_from_slice(g));
    flat
}

fn run_group(world: usize, cfg: KfacConfig, steps: usize) -> Vec<Vec<f32>> {
    let comms = ThreadComm::create(world);
    let cfg = &cfg;
    thread::scope(|s| {
        let handles: Vec<_> = comms
            .iter()
            .map(|comm| s.spawn(move || run_rank(comm, cfg.clone(), steps)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

fn max_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .fold(0.0f32, |m, (&x, &y)| m.max((x - y).abs()))
}

#[test]
fn opt_strategy_matches_single_rank_across_world_sizes() {
    let cfg = KfacConfig {
        update_freq: 2,
        ..KfacConfig::default()
    };
    let single = run_rank(&LocalComm::new(), cfg.clone(), 5);
    for world in [2, 3, 4] {
        let results = run_group(world, cfg.clone(), 5);
        for (rank, r) in results.iter().enumerate() {
            assert!(
                max_diff(r, &single) < 2e-4,
                "world={world} rank={rank} diff={}",
                max_diff(r, &single)
            );
        }
    }
}

#[test]
fn lw_strategy_matches_opt_strategy() {
    let base = KfacConfig {
        update_freq: 2,
        ..KfacConfig::default()
    };
    let opt = run_group(
        3,
        KfacConfig {
            strategy: DistStrategy::Opt,
            ..base.clone()
        },
        4,
    );
    let lw = run_group(
        3,
        KfacConfig {
            strategy: DistStrategy::Lw,
            ..base
        },
        4,
    );
    for (o, l) in opt.iter().zip(&lw) {
        assert!(max_diff(o, l) < 2e-4, "diff={}", max_diff(o, l));
    }
}

#[test]
fn size_balanced_placement_matches_round_robin_numerically() {
    // Placement changes who computes what, never the result.
    let base = KfacConfig {
        update_freq: 1,
        ..KfacConfig::default()
    };
    let rr = run_group(
        2,
        KfacConfig {
            placement: PlacementPolicy::RoundRobin,
            ..base.clone()
        },
        3,
    );
    let lpt = run_group(
        2,
        KfacConfig {
            placement: PlacementPolicy::SizeBalanced,
            ..base
        },
        3,
    );
    for (a, b) in rr.iter().zip(&lpt) {
        assert!(max_diff(a, b) < 2e-4);
    }
}

#[test]
fn explicit_inverse_path_is_distributable_too() {
    let cfg = KfacConfig {
        inversion: InversionMethod::ExplicitInverse,
        update_freq: 2,
        ..KfacConfig::default()
    };
    let single = run_rank(&LocalComm::new(), cfg.clone(), 4);
    let results = run_group(2, cfg, 4);
    for r in &results {
        assert!(max_diff(r, &single) < 2e-4);
    }
}

#[test]
fn stale_second_order_iterations_need_no_kfac_communication() {
    // With update_freq = 4 and 4 steps, only step 0 communicates factors
    // and eigendecompositions; steps 1–3 must add zero Factor/Eigen bytes
    // (the §IV-C communication-skipping property).
    let comms = ThreadComm::create(2);
    let traffic: Vec<_> = thread::scope(|s| {
        let handles: Vec<_> = comms
            .iter()
            .map(|comm| {
                s.spawn(move || {
                    let cfg = KfacConfig {
                        update_freq: 4,
                        factor_freq_multiplier: 1,
                        ..KfacConfig::default()
                    };
                    let mut model = build_model(42);
                    let mut kfac = Kfac::new(&mut model, cfg);
                    let mut checkpoints = Vec::new();
                    for step in 0..4 {
                        run_fwd_bwd(&mut model, kfac.needs_capture(), step as u64);
                        kfac.step(&mut model, comm, 0.1);
                        let t = comm.traffic();
                        checkpoints.push((t.factor_bytes, t.eigen_bytes));
                    }
                    checkpoints
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for ranks in &traffic {
        let after_first = ranks[0];
        assert!(
            after_first.0 > 0 && after_first.1 > 0,
            "step 0 communicates"
        );
        for later in &ranks[1..] {
            assert_eq!(*later, after_first, "stale steps must not communicate");
        }
    }
}

#[test]
fn kfac_descends_faster_than_sgd_on_shared_iterations() {
    // Sanity: preconditioned steps should cut the training loss at least
    // as fast as plain SGD on the same tiny problem.
    use kfac_optim::{Optimizer, Sgd};

    let loss_of = |use_kfac: bool| -> f32 {
        let comm = LocalComm::new();
        let mut model = build_model(7);
        let mut opt = Sgd::new(0.9, 0.0);
        let mut kfac = Kfac::new(
            &mut model,
            KfacConfig {
                update_freq: 5,
                ..KfacConfig::default()
            },
        );
        let criterion = CrossEntropyLoss::new();
        let mut rng = Rng64::new(5);
        let x = Tensor4::from_vec(16, 6, 1, 1, (0..96).map(|_| rng.normal_f32()).collect());
        let targets: Vec<usize> = (0..16).map(|i| i % 4).collect();
        let mut last = f32::INFINITY;
        for _ in 0..30 {
            model.zero_grad();
            model.set_capture(use_kfac && kfac.needs_capture());
            let out = model.forward(&x, Mode::Train);
            let (l, grad) = criterion.forward(&out, &targets);
            last = l;
            let _ = model.backward(&grad);
            if use_kfac {
                kfac.step(&mut model, &comm, 0.05);
            }
            opt.step(&mut model, 0.05);
        }
        last
    };

    let kfac_loss = loss_of(true);
    let sgd_loss = loss_of(false);
    assert!(
        kfac_loss < sgd_loss * 1.05,
        "kfac {kfac_loss} should not lose badly to sgd {sgd_loss}"
    );
    assert!(
        kfac_loss < 1.0,
        "kfac must actually be learning: {kfac_loss}"
    );
}

#[test]
fn epoch_schedules_flow_through() {
    let mut model = build_model(1);
    let mut kfac = Kfac::new(
        &mut model,
        KfacConfig {
            damping: 0.01,
            damping_decay_epochs: vec![5],
            damping_decay_factor: 0.1,
            update_freq: 10,
            update_freq_schedule: vec![(5, 50)],
            ..KfacConfig::default()
        },
    );
    assert_eq!(kfac.damping(), 0.01);
    assert_eq!(kfac.update_freq(), 10);
    kfac.set_epoch(5);
    assert!((kfac.damping() - 0.001).abs() < 1e-9);
    assert_eq!(kfac.update_freq(), 50);
}

#[test]
fn needs_capture_follows_factor_interval() {
    let comm = LocalComm::new();
    let mut model = build_model(1);
    let mut kfac = Kfac::new(
        &mut model,
        KfacConfig {
            update_freq: 4,
            factor_freq_multiplier: 2, // factor interval = 2
            ..KfacConfig::default()
        },
    );
    let mut pattern = Vec::new();
    for s in 0..6 {
        pattern.push(kfac.needs_capture());
        run_fwd_bwd(&mut model, kfac.needs_capture(), s as u64);
        kfac.step(&mut model, &comm, 0.1);
    }
    assert_eq!(pattern, vec![true, false, true, false, true, false]);
}

#[test]
fn eigen_solver_backends_agree() {
    // Jacobi and tridiagonal-QL must produce the same preconditioned
    // gradients (eigendecompositions are unique up to sign/permutation,
    // which the eigen path is invariant to).
    use kfac::EigenSolver;
    let run = |solver: EigenSolver| {
        let cfg = KfacConfig {
            update_freq: 2,
            eigen_solver: solver,
            ..KfacConfig::default()
        };
        run_rank(&LocalComm::new(), cfg, 4)
    };
    let jacobi = run(EigenSolver::Jacobi);
    let ql = run(EigenSolver::TridiagonalQl);
    assert!(
        max_diff(&jacobi, &ql) < 5e-4,
        "solver backends diverged: {}",
        max_diff(&jacobi, &ql)
    );
}

#[test]
fn triangular_factor_comm_matches_full_and_halves_traffic() {
    // The compressed exchange must be numerically identical to the full
    // one (factors are exactly symmetric) while moving ~half the bytes.
    let run = |triangular: bool| {
        let cfg = KfacConfig {
            update_freq: 2,
            triangular_factor_comm: triangular,
            ..KfacConfig::default()
        };
        let comms = ThreadComm::create(2);
        let cfg = &cfg;
        thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|comm| {
                    s.spawn(move || {
                        let grads = run_rank(comm, cfg.clone(), 4);
                        (grads, comm.traffic().factor_bytes)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        })
    };
    let full = run(false);
    let tri = run(true);
    for ((g_full, b_full), (g_tri, b_tri)) in full.iter().zip(&tri) {
        assert!(
            max_diff(g_full, g_tri) < 1e-6,
            "compression must be lossless: {}",
            max_diff(g_full, g_tri)
        );
        let ratio = *b_tri as f64 / *b_full as f64;
        assert!(
            (0.45..0.65).contains(&ratio),
            "triangular traffic should be ~half: {ratio} ({b_tri} vs {b_full})"
        );
    }
}

/// Same as [`run_rank`] but driving the public phase methods directly —
/// the exact composition the overlapped execution graph uses. Must be
/// bitwise identical to `Kfac::step`.
fn run_rank_phases(comm: &dyn Communicator, cfg: KfacConfig, steps: usize) -> Vec<f32> {
    use kfac_collectives::{ReduceOp, TrafficClass};
    use kfac_tensor::Matrix;
    let mut model = build_model(42);
    let mut kfac = Kfac::new(&mut model, cfg);
    for s in 0..steps {
        run_fwd_bwd(&mut model, kfac.needs_capture(), 100 + s as u64);
        let mut layers = Vec::new();
        model.collect_kfac(&mut layers);
        if kfac.is_factor_iteration() {
            for (li, layer) in layers.iter().enumerate() {
                kfac.factor_update_layer(li, &**layer);
            }
            if comm.size() > 1 {
                let mut fused = kfac.factor_pack();
                comm.allreduce_tagged(&mut fused, ReduceOp::Average, TrafficClass::Factor);
                kfac.factor_unpack(&fused);
            }
            kfac.note_factor_update();
        }
        if kfac.is_eig_iteration() {
            let assignment = kfac.eig_assignment(comm.size());
            for (id, &owner) in assignment.iter().enumerate() {
                if owner == comm.rank() {
                    kfac.eig_compute_one(id);
                }
            }
            if comm.size() > 1 {
                let payload = kfac.eig_local_payload(&assignment, comm.rank());
                let gathered = comm.allgather_tagged(&payload, TrafficClass::Eigen);
                kfac.eig_apply_gathered(&assignment, comm.rank(), &gathered);
            }
            kfac.note_eig_update();
        }
        let grads: Vec<Matrix> = layers.iter().map(|l| l.grad_matrix()).collect();
        let preconds: Vec<Matrix> = grads
            .iter()
            .enumerate()
            .map(|(li, g)| kfac.precondition_one(li, g))
            .collect();
        kfac.apply_with_clip(&mut layers, &preconds, &grads, 0.1);
        kfac.advance();
    }
    let mut flat = Vec::new();
    model.visit_params("", &mut |_, _, g| flat.extend_from_slice(g));
    flat
}

#[test]
fn phase_composition_is_bitwise_identical_to_step() {
    let cfg = KfacConfig {
        update_freq: 2,
        ..KfacConfig::default()
    };
    // Single rank.
    let whole = run_rank(&LocalComm::new(), cfg.clone(), 5);
    let phased = run_rank_phases(&LocalComm::new(), cfg.clone(), 5);
    assert_eq!(whole, phased, "single-rank phases diverge from step()");

    // Multi-rank: rank r runs step(), compared against rank r of a
    // separate group running the phase composition.
    for world in [2, 4] {
        let whole = run_group(world, cfg.clone(), 5);
        let comms = ThreadComm::create(world);
        let cfg_ref = &cfg;
        let phased: Vec<Vec<f32>> = thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|comm| s.spawn(move || run_rank_phases(comm, cfg_ref.clone(), 5)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (rank, (w, p)) in whole.iter().zip(&phased).enumerate() {
            assert_eq!(w, p, "world={world} rank={rank} phases diverge from step()");
        }
    }
}
