//! Failure-injection tests: the preconditioner must fail loudly and
//! specifically on protocol misuse, never silently corrupt training.

use kfac::{Kfac, KfacConfig};
use kfac_collectives::LocalComm;
use kfac_nn::{layer::Mode, CrossEntropyLoss, Layer, Linear, Sequential};
use kfac_tensor::{Rng64, Tensor4};

fn model() -> Sequential {
    let mut rng = Rng64::new(1);
    Sequential::from_layers(vec![Box::new(Linear::new("fc", 4, 3, true, &mut rng))])
}

fn fwd_bwd(m: &mut Sequential, capture: bool) {
    let mut rng = Rng64::new(2);
    let x = Tensor4::from_vec(4, 4, 1, 1, (0..16).map(|_| rng.normal_f32()).collect());
    m.zero_grad();
    m.set_capture(capture);
    let out = m.forward(&x, Mode::Train);
    let (_, g) = CrossEntropyLoss::new().forward(&out, &[0, 1, 2, 0]);
    let _ = m.backward(&g);
}

#[test]
#[should_panic(expected = "has no capture")]
fn factor_update_without_capture_panics_with_guidance() {
    let mut m = model();
    let mut kfac = Kfac::new(&mut m, KfacConfig::default());
    // Deliberately ignore needs_capture(): the harness bug the message
    // must diagnose.
    fwd_bwd(&mut m, false);
    kfac.step(&mut m, &LocalComm::new(), 0.1);
}

#[test]
#[should_panic(expected = "no K-FAC-eligible")]
fn model_without_eligible_layers_is_rejected() {
    let mut m = Sequential::from_layers(vec![Box::new(kfac_nn::ReLU::new())]);
    let _ = Kfac::new(&mut m, KfacConfig::default());
}

#[test]
#[should_panic(expected = "model structure changed")]
fn structure_change_between_steps_is_rejected() {
    let mut m = model();
    let mut kfac = Kfac::new(&mut m, KfacConfig::default());
    fwd_bwd(&mut m, true);
    kfac.step(&mut m, &LocalComm::new(), 0.1);
    // Swap in a different model.
    let mut rng = Rng64::new(3);
    let mut other = Sequential::from_layers(vec![
        Box::new(Linear::new("a", 4, 3, true, &mut rng)),
        Box::new(Linear::new("b", 3, 3, true, &mut rng)),
    ]);
    fwd_bwd(&mut other, true);
    kfac.step(&mut other, &LocalComm::new(), 0.1);
}

#[test]
#[should_panic(expected = "damping must be positive")]
fn invalid_config_rejected_at_construction() {
    let mut m = model();
    let _ = Kfac::new(
        &mut m,
        KfacConfig {
            damping: -1.0,
            ..KfacConfig::default()
        },
    );
}

#[test]
fn stale_steps_never_panic_without_capture() {
    // Only factor-update iterations require capture; the steps between
    // them must work with capture off.
    let mut m = model();
    let mut kfac = Kfac::new(
        &mut m,
        KfacConfig {
            update_freq: 4,
            factor_freq_multiplier: 1,
            ..KfacConfig::default()
        },
    );
    let comm = LocalComm::new();
    for _ in 0..8 {
        fwd_bwd(&mut m, kfac.needs_capture());
        kfac.step(&mut m, &comm, 0.1);
    }
}

#[test]
fn gradients_stay_finite_under_extreme_damping_and_lr() {
    // Numerical robustness: pathological hyper-parameters may train
    // badly but must never produce NaN/Inf gradients.
    for (damping, lr) in [(1e-8f32, 10.0f32), (100.0, 1e-8), (1e-8, 1e-8)] {
        let mut m = model();
        let mut kfac = Kfac::new(
            &mut m,
            KfacConfig {
                damping,
                update_freq: 1,
                ..KfacConfig::default()
            },
        );
        let comm = LocalComm::new();
        for _ in 0..3 {
            fwd_bwd(&mut m, kfac.needs_capture());
            kfac.step(&mut m, &comm, lr);
            m.visit_params("", &mut |name, _, g| {
                assert!(
                    g.iter().all(|v| v.is_finite()),
                    "non-finite gradient in {name} at damping={damping} lr={lr}"
                );
            });
        }
    }
}
