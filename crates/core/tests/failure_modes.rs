//! Failure-injection tests: the preconditioner must fail loudly and
//! specifically on protocol misuse, never silently corrupt training.

use kfac::{Kfac, KfacConfig};
use kfac_collectives::LocalComm;
use kfac_nn::{layer::Mode, CrossEntropyLoss, Layer, Linear, Sequential};
use kfac_tensor::{Matrix, Rng64, Tensor4};

fn model() -> Sequential {
    let mut rng = Rng64::new(1);
    Sequential::from_layers(vec![Box::new(Linear::new("fc", 4, 3, true, &mut rng))])
}

fn fwd_bwd(m: &mut Sequential, capture: bool) {
    let mut rng = Rng64::new(2);
    let x = Tensor4::from_vec(4, 4, 1, 1, (0..16).map(|_| rng.normal_f32()).collect());
    m.zero_grad();
    m.set_capture(capture);
    let out = m.forward(&x, Mode::Train);
    let (_, g) = CrossEntropyLoss::new().forward(&out, &[0, 1, 2, 0]);
    let _ = m.backward(&g);
}

#[test]
#[should_panic(expected = "has no capture")]
fn factor_update_without_capture_panics_with_guidance() {
    let mut m = model();
    let mut kfac = Kfac::new(&mut m, KfacConfig::default());
    // Deliberately ignore needs_capture(): the harness bug the message
    // must diagnose.
    fwd_bwd(&mut m, false);
    kfac.step(&mut m, &LocalComm::new(), 0.1);
}

#[test]
#[should_panic(expected = "no K-FAC-eligible")]
fn model_without_eligible_layers_is_rejected() {
    let mut m = Sequential::from_layers(vec![Box::new(kfac_nn::ReLU::new())]);
    let _ = Kfac::new(&mut m, KfacConfig::default());
}

#[test]
#[should_panic(expected = "model structure changed")]
fn structure_change_between_steps_is_rejected() {
    let mut m = model();
    let mut kfac = Kfac::new(&mut m, KfacConfig::default());
    fwd_bwd(&mut m, true);
    kfac.step(&mut m, &LocalComm::new(), 0.1);
    // Swap in a different model.
    let mut rng = Rng64::new(3);
    let mut other = Sequential::from_layers(vec![
        Box::new(Linear::new("a", 4, 3, true, &mut rng)),
        Box::new(Linear::new("b", 3, 3, true, &mut rng)),
    ]);
    fwd_bwd(&mut other, true);
    kfac.step(&mut other, &LocalComm::new(), 0.1);
}

#[test]
#[should_panic(expected = "damping must be positive")]
fn invalid_config_rejected_at_construction() {
    let mut m = model();
    let _ = Kfac::new(
        &mut m,
        KfacConfig {
            damping: -1.0,
            ..KfacConfig::default()
        },
    );
}

#[test]
fn stale_steps_never_panic_without_capture() {
    // Only factor-update iterations require capture; the steps between
    // them must work with capture off.
    let mut m = model();
    let mut kfac = Kfac::new(
        &mut m,
        KfacConfig {
            update_freq: 4,
            factor_freq_multiplier: 1,
            ..KfacConfig::default()
        },
    );
    let comm = LocalComm::new();
    for _ in 0..8 {
        fwd_bwd(&mut m, kfac.needs_capture());
        kfac.step(&mut m, &comm, 0.1);
    }
}

#[test]
fn corrupted_factor_payload_leaves_averages_stale() {
    let mut m = model();
    let mut kfac = Kfac::new(&mut m, KfacConfig::default());
    let comm = LocalComm::new();
    fwd_bwd(&mut m, true);
    kfac.step(&mut m, &comm, 0.1);
    let clean = kfac.factor_pack();
    // A corrupted payload is rejected; the previous averages survive.
    let mut poisoned = clean.clone();
    poisoned[0] = f32::NAN;
    assert!(!kfac.factor_unpack_checked(&poisoned));
    assert_eq!(
        kfac.factor_pack(),
        clean,
        "averages mutated by rejected payload"
    );
    assert_eq!(kfac.stats().stale_factor_steps, 1);
    // The same payload, clean, installs fine.
    assert!(kfac.factor_unpack_checked(&clean));
    assert_eq!(kfac.stats().stale_factor_steps, 1);
}

#[test]
fn missing_second_order_degrades_to_damped_identity() {
    let mut m = model();
    let damping = 0.03f32;
    let kfac = Kfac::new(
        &mut m,
        KfacConfig {
            damping,
            ..KfacConfig::default()
        },
    );
    // No eig update has run: second-order state is absent. The layer
    // must still precondition — with the damped identity.
    let grad = Matrix::from_vec(3, 4, (0..12).map(|i| i as f32 - 5.5).collect());
    let pg = kfac.precondition_one(0, &grad);
    for (g, p) in grad.as_slice().iter().zip(pg.as_slice()) {
        assert_eq!(p.to_bits(), (g / (1.0 + damping)).to_bits());
    }
    assert_eq!(kfac.stats().identity_preconds, 1);
}

#[test]
fn staged_eig_path_is_bitwise_neutral() {
    let mut m = model();
    let mut kfac = Kfac::new(&mut m, KfacConfig::default());
    let comm = LocalComm::new();
    fwd_bwd(&mut m, true);
    kfac.step(&mut m, &comm, 0.1); // direct path stored second-order state
                                   // Linear(4→3, bias): A is (in+1)=5, G is 3, grad is 3×5.
    let grad = Matrix::from_vec(3, 5, (0..15).map(|i| (i as f32).sin()).collect());
    let direct = kfac.precondition_one(0, &grad);
    // Staged path: recompute + serialize + apply (own payload decoded
    // too). Must reproduce the direct path bit-for-bit.
    let assignment = kfac.eig_assignment(1);
    let payload = kfac.eig_compute_payload(&assignment, 0);
    kfac.eig_apply_all(&assignment, &[payload]);
    let staged = kfac.precondition_one(0, &grad);
    for (a, b) in direct.as_slice().iter().zip(staged.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(kfac.stats().eig_fallbacks, 0);
}

#[test]
fn state_roundtrip_is_identical() {
    let mut m = model();
    let mut kfac = Kfac::new(&mut m, KfacConfig::default());
    let comm = LocalComm::new();
    for _ in 0..3 {
        fwd_bwd(&mut m, kfac.needs_capture());
        kfac.step(&mut m, &comm, 0.1);
    }
    let saved = kfac.save_state();
    let mut m2 = model();
    let mut restored = Kfac::new(&mut m2, KfacConfig::default());
    restored.restore_state(&saved).unwrap();
    assert_eq!(restored.save_state(), saved, "save→restore→save drifted");
    assert_eq!(restored.iteration(), kfac.iteration());
    // Garbage is rejected, not installed.
    assert!(restored.restore_state(b"JUNKJUNKJUNK").is_err());
    assert!(restored.restore_state(&saved[..saved.len() - 2]).is_err());
}

#[test]
fn gradients_stay_finite_under_extreme_damping_and_lr() {
    // Numerical robustness: pathological hyper-parameters may train
    // badly but must never produce NaN/Inf gradients.
    for (damping, lr) in [(1e-8f32, 10.0f32), (100.0, 1e-8), (1e-8, 1e-8)] {
        let mut m = model();
        let mut kfac = Kfac::new(
            &mut m,
            KfacConfig {
                damping,
                update_freq: 1,
                ..KfacConfig::default()
            },
        );
        let comm = LocalComm::new();
        for _ in 0..3 {
            fwd_bwd(&mut m, kfac.needs_capture());
            kfac.step(&mut m, &comm, lr);
            m.visit_params("", &mut |name, _, g| {
                assert!(
                    g.iter().all(|v| v.is_finite()),
                    "non-finite gradient in {name} at damping={damping} lr={lr}"
                );
            });
        }
    }
}
