//! Cross-backend eigensolver agreement on K-FAC-shaped factors.
//!
//! The three factor backends — cyclic Jacobi, tridiagonal QL, and the
//! randomized truncated range-finder — must be interchangeable from the
//! preconditioner's point of view. Eigenvectors are only defined up to
//! sign (and rotation inside degenerate clusters), so agreement is
//! checked on the invariants that matter downstream: the spectral
//! reconstruction `Q diag(λ) Qᵀ` and the preconditioned gradient.

use kfac::config::RandEigPolicy;
use kfac::math::{
    decompose_factor_randomized, decompose_factor_with, precondition_eigen, EigenPair,
};
use kfac::EigenSolver;
use kfac_tensor::{EigenDecomposition, Matrix, Rng64};
use proptest::prelude::*;

/// K-FAC-shaped factor of dimension `n`: a damped Gram matrix
/// `XᵀX + εI` where row `i` of the Gaussian `X` is scaled by
/// `spectrum[i]` — so the factor's eigenvalues follow `spectrum²` up to
/// rotation, just like activation/gradient covariances with their
/// characteristic decaying-plus-clustered shape.
fn shaped_factor(n: usize, spectrum: &[f64], seed: u64) -> Matrix {
    assert_eq!(spectrum.len(), n);
    let mut rng = Rng64::new(seed);
    let mut x = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.normal_f32()).collect());
    for (i, &scale) in spectrum.iter().enumerate() {
        let s = scale as f32;
        for v in x.row_mut(i) {
            *v *= s;
        }
    }
    let mut a = x.gram();
    a.add_diag(1e-4);
    a
}

/// Geometrically decaying mode scales (most K-FAC factors late in
/// training).
fn decaying_spectrum(n: usize, decay: f64) -> Vec<f64> {
    (0..n).map(|i| decay.powi(i as i32)).collect()
}

/// Two-cluster spectrum: a dominant head and a weak bulk (early-training
/// factors whose activations are still nearly isotropic per cluster).
fn clustered_spectrum(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| if i < n.div_ceil(8) { 1.0 } else { 0.05 })
        .collect()
}

/// `Q diag(λ₊) Qᵀ` — the operator the eigen path actually uses
/// (eigenvalues clamped at zero exactly as `precondition_eigen` does).
fn reconstruct(e: &EigenDecomposition) -> Matrix {
    let n = e.eigenvalues.len();
    let mut scaled = e.eigenvectors.clone();
    for i in 0..n {
        let row = scaled.row_mut(i);
        for (j, v) in row.iter_mut().enumerate() {
            *v *= e.eigenvalues[j].max(0.0);
        }
    }
    scaled.matmul_nt(&e.eigenvectors)
}

/// Frobenius norm of the difference.
fn frob_diff(a: &Matrix, b: &Matrix) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

fn frob(a: &Matrix) -> f64 {
    a.as_slice()
        .iter()
        .map(|&x| x as f64 * x as f64)
        .sum::<f64>()
        .sqrt()
}

/// Policy that exercises real truncation even on small test factors.
fn eager_policy() -> RandEigPolicy {
    RandEigPolicy {
        min_dim: 1,
        mass_threshold: 0.999,
        ..Default::default()
    }
}

/// All three backends over one factor, same order as returned tuple.
fn all_backends(f: &Matrix) -> [EigenDecomposition; 3] {
    [
        decompose_factor_with(f, EigenSolver::Jacobi).expect("jacobi"),
        decompose_factor_with(f, EigenSolver::TridiagonalQl).expect("ql"),
        decompose_factor_randomized(f, &eager_policy()).expect("randomized"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Spectral reconstruction agreement across the full 1–200
    /// dimension range on both characteristic spectrum shapes: the
    /// exact backends reproduce the factor to FP32 round-off, and the
    /// randomized backend reproduces it to round-off plus its own
    /// (small, mass-bounded) truncation residual.
    #[test]
    fn backends_agree_on_spectral_reconstruction(
        dim in 1usize..201,
        seed in 1u64..1_000,
        shape in 0usize..2,
    ) {
        let spectrum = if shape == 0 {
            decaying_spectrum(dim, 0.85)
        } else {
            clustered_spectrum(dim)
        };
        let f = shaped_factor(dim, &spectrum, seed);
        let scale = frob(&f).max(1e-6);
        let [jacobi, ql, rand] = all_backends(&f);

        // Exact backends: tight reconstruction.
        for (name, e) in [("jacobi", &jacobi), ("ql", &ql)] {
            let err = frob_diff(&reconstruct(e), &f) / scale;
            prop_assert!(err < 5e-4, "{name} reconstruction error {err}");
        }

        // Randomized: reconstruction differs from exact only by the
        // discarded spectral mass (≤ 0.1% of the trace by policy) plus
        // round-off. Bound against the trace since Σλᵢ = tr F.
        let trace: f64 = f.trace() as f64;
        let err = frob_diff(&reconstruct(&rand), &f);
        let budget = 0.001 * trace + 5e-4 * scale + 1e-5;
        prop_assert!(
            err <= budget,
            "randomized reconstruction error {err} > budget {budget} (dim {dim})"
        );

        // And its kept Ritz values must match the exact spectrum's top
        // modes (ascending layout puts them in the trailing slots).
        let rank = rand.eigenvalues.len();
        let kept = rand.truncated_rank().unwrap_or(rank);
        let top = kept.min(4);
        for k in 0..top {
            let exact = ql.eigenvalues[dim - 1 - k] as f64;
            let approx = rand.eigenvalues[dim - 1 - k] as f64;
            prop_assert!(
                (exact - approx).abs() <= 1e-3 * exact.abs().max(1e-3),
                "top-{k} Ritz value {approx} vs exact {exact} (dim {dim})"
            );
        }
    }

    /// The property the preconditioner relies on: at high captured mass
    /// the randomized-truncated decomposition preconditions gradients to
    /// within a small relative tolerance of the exact backends.
    #[test]
    fn randomized_preconditioning_matches_exact_at_high_mass(
        dim_g in 32usize..160,
        seed in 1u64..1_000,
        gamma in 0.01f32..0.2,
    ) {
        let g = shaped_factor(dim_g, &decaying_spectrum(dim_g, 0.85), seed);
        let a = shaped_factor(6, &decaying_spectrum(6, 0.9), seed ^ 0xA5A5);
        let mut rng = Rng64::new(seed.wrapping_mul(7919));
        let grad = Matrix::from_vec(
            dim_g,
            6,
            (0..dim_g * 6).map(|_| rng.normal_f32()).collect(),
        );

        let exact = precondition_eigen(
            &EigenPair {
                a: decompose_factor_with(&a, EigenSolver::TridiagonalQl).expect("ql a"),
                g: decompose_factor_with(&g, EigenSolver::TridiagonalQl).expect("ql g"),
            },
            &grad,
            gamma,
        );
        // "High captured mass": the preconditioner divides discarded
        // modes by γ instead of λ+γ, so the residual error scales with
        // λ_discarded/γ — demand 99.99% capture to keep that small for
        // the whole γ range under test.
        let tight = RandEigPolicy {
            mass_threshold: 0.9999,
            ..eager_policy()
        };
        let approx = precondition_eigen(
            &EigenPair {
                a: decompose_factor_randomized(&a, &tight).expect("rand a"),
                g: decompose_factor_randomized(&g, &tight).expect("rand g"),
            },
            &grad,
            gamma,
        );
        let rel = frob_diff(&approx, &exact) / frob(&exact).max(1e-9);
        prop_assert!(rel < 0.05, "preconditioned gradient rel error {rel} (dim {dim_g})");
    }
}

/// Deterministic spot checks on the range boundaries (proptest samples
/// the interior; the paper's ResNet factor dims hit these exactly).
#[test]
fn boundary_dims_reconstruct_under_every_backend() {
    for dim in [1usize, 2, 3, 200] {
        let f = shaped_factor(dim, &decaying_spectrum(dim, 0.8), 42 + dim as u64);
        let scale = frob(&f).max(1e-6);
        let trace = f.trace() as f64;
        let [jacobi, ql, rand] = all_backends(&f);
        for e in [&jacobi, &ql] {
            assert!(frob_diff(&reconstruct(e), &f) / scale < 5e-4, "dim {dim}");
        }
        let err = frob_diff(&reconstruct(&rand), &f);
        assert!(
            err <= 0.001 * trace + 5e-4 * scale + 1e-5,
            "dim {dim} randomized err {err}"
        );
    }
}
