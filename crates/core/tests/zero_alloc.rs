//! Steady-state kernel paths perform zero heap allocations.
//!
//! The compute substrate's contract (see `kfac_tensor::arena`): after one
//! warm-up iteration, the `_into` kernels (GEMM, Gram, im2col/col2im) and
//! the K-FAC factor update serve every transient from per-layer scratch or
//! the thread-local arena. This test pins that with a counting global
//! allocator: it arms a thread-local counter, replays the hot path on
//! warmed buffers, and asserts the count stays at zero.
//!
//! The guarantee holds on a single-thread pool (`KFAC_POOL_THREADS=1`,
//! forced below): multi-thread pools allocate small scheduler bookkeeping
//! (chunk lists, one `Arc` per parallel call) by design.
//!
//! Run explicitly (ignored by default so the custom global allocator never
//! skews timing-sensitive CI lanes):
//!
//! ```text
//! cargo test -p kfac --test zero_alloc -- --ignored
//! ```

use kfac::{Kfac, KfacConfig};
use kfac_nn::im2col::{col2im_into, im2col_into};
use kfac_nn::{Conv2d, CrossEntropyLoss, Flatten, Layer, Linear, Mode, ReLU, Sequential};
use kfac_tensor::{Matrix, Rng64, Tensor4};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

// ---------------------------------------------------------------------------
// Counting allocator: thread-local armed flag + counter, const-initialized
// so the TLS access itself never allocates or recurses.
// ---------------------------------------------------------------------------

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAlloc;

impl CountingAlloc {
    fn count() {
        // `try_with` so allocations during thread teardown stay safe.
        let armed = ARMED.try_with(Cell::get).unwrap_or(false);
        if armed {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::count();
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::count();
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::count();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn armed<R>(f: impl FnOnce() -> R) -> (R, usize) {
    ALLOCS.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    let r = f();
    ARMED.with(|a| a.set(false));
    (r, ALLOCS.with(Cell::get))
}

fn random_matrix(rows: usize, cols: usize, rng: &mut Rng64) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.normal_f32()).collect(),
    )
}

/// The raw `_into` kernels: GEMM in all orientations, both Grams, and the
/// im2col/col2im pair, replayed on warmed outputs.
#[test]
#[ignore = "run explicitly: cargo test -p kfac --test zero_alloc -- --ignored"]
fn into_kernels_allocate_nothing_when_warm() {
    rayon::set_pool_threads(1);
    let mut rng = Rng64::new(7);
    // Big enough for the packed path (> 24³ multiply-adds) and for
    // multiple MR/NR tiles; odd sizes exercise the edge tiles too.
    let (m, k, n) = (70, 65, 50);
    let a = random_matrix(m, k, &mut rng);
    let b = random_matrix(k, n, &mut rng);
    let at = a.transpose();
    let bt = b.transpose();
    let x = Tensor4::from_vec(
        4,
        3,
        12,
        12,
        (0..4 * 3 * 12 * 12).map(|_| rng.normal_f32()).collect(),
    );

    let mut out = Matrix::zeros(0, 0);
    let mut out_tn = Matrix::zeros(0, 0);
    let mut out_nt = Matrix::zeros(0, 0);
    let mut gram = Matrix::zeros(0, 0);
    let mut gram_nt = Matrix::zeros(0, 0);
    let mut cols = Matrix::zeros(0, 0);
    let mut dx = Tensor4::zeros(0, 0, 0, 0);

    let mut pass = |arena_warm: bool| {
        a.matmul_into(&b, &mut out);
        at.matmul_tn_into(&b, &mut out_tn);
        a.matmul_nt_into(&bt, &mut out_nt);
        a.gram_into(&mut gram);
        a.gram_nt_into(&mut gram_nt);
        im2col_into(&x, 3, 1, 1, &mut cols);
        col2im_into(&cols, x.shape(), 3, 1, 1, &mut dx);
        arena_warm
    };

    // Two unarmed warm-up passes fill the output buffers and the arena.
    pass(false);
    pass(false);

    let (_, allocs) = armed(|| pass(true));
    assert_eq!(
        allocs, 0,
        "steady-state kernel pass performed {allocs} heap allocations"
    );
}

/// The K-FAC factor update: `compute_factors` (arena-backed Grams) folded
/// into warm running averages must be allocation-free.
#[test]
#[ignore = "run explicitly: cargo test -p kfac --test zero_alloc -- --ignored"]
fn factor_update_allocates_nothing_when_warm() {
    rayon::set_pool_threads(1);
    let mut rng = Rng64::new(11);
    let mut model = Sequential::from_layers(vec![
        Box::new(Conv2d::new("conv", 3, 8, 3, 1, 1, true, &mut rng)),
        Box::new(ReLU::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new("fc", 8 * 8 * 8, 10, true, &mut rng)),
    ]);
    let mut kfac = Kfac::new(&mut model, KfacConfig::default());

    // One captured forward/backward provides the activation/gradient rows.
    let x = Tensor4::from_vec(
        4,
        3,
        8,
        8,
        (0..4 * 3 * 8 * 8).map(|_| rng.normal_f32()).collect(),
    );
    let targets: Vec<usize> = (0..4).map(|i| i % 10).collect();
    model.zero_grad();
    model.set_capture(true);
    let out = model.forward(&x, Mode::Train);
    let (_, grad) = CrossEntropyLoss::new().forward(&out, &targets);
    let _ = model.backward(&grad);

    let mut layers = Vec::new();
    model.collect_kfac(&mut layers);

    // Warm-up 1 stores the first factors (they escape into the running
    // averages); warm-up 2 allocates transients and recycles them into the
    // arena; the armed pass must be served entirely from the arena.
    for _ in 0..2 {
        for (li, layer) in layers.iter().enumerate() {
            kfac.factor_update_layer(li, &**layer);
        }
    }

    let (_, allocs) = armed(|| {
        for (li, layer) in layers.iter().enumerate() {
            kfac.factor_update_layer(li, &**layer);
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state factor update performed {allocs} heap allocations"
    );
}
