//! Per-stage precision policy for the mixed-precision substrate.
//!
//! The paper trains in mixed precision ("we use … mixed precision
//! training", §V-B) but is silent on which K-FAC stages tolerate reduced
//! width. [`PrecisionPolicy`] makes that an explicit, per-stage choice:
//! each stage of the K-FAC pipeline (activation/gradient capture, factor
//! Gram accumulation, the running-average EMA, eigendecomposition inputs,
//! preconditioning inputs, and the two wire payloads) carries its own
//! [`Dtype`]. The default is f32 everywhere, which is *bitwise identical*
//! to the pre-policy behavior — mixed precision is strictly opt-in.
//!
//! Storage stages (`capture`, `factor_gram`, `factor_ema`, `eig`,
//! `precond`) accept f32 or bf16: bf16 keeps f32's 8-bit exponent, so
//! Gram accumulations and eigen-spectra keep their dynamic range and only
//! give up mantissa. They reject f16 — its 5-bit exponent overflows at
//! 65504, far below observed Gram diagonals. Wire stages (`grad_wire`,
//! `factor_wire`) additionally accept f16, where the saturating encode in
//! `kfac_collectives::wire` bounds the damage and the decode-side
//! non-finite rejection catches true overflow.
//!
//! All kernels *accumulate* in f32 (or f64 for the compensated EMA)
//! regardless of storage dtype — reduced precision here is a storage and
//! wire format, never an accumulator format.

use crate::config::ConfigError;
use kfac_tensor::Dtype;

/// Which dtype each K-FAC pipeline stage stores or transmits at.
///
/// Constructed via [`Default`] (f32 everywhere), [`PrecisionPolicy::bf16`]
/// (the bf16-storage preset), or [`PrecisionPolicy::from_env`]
/// (`KFAC_PRECISION`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrecisionPolicy {
    /// Storage for captured activations / backprop gradients (for conv
    /// layers this is the im2col column scratch itself). F32 | Bf16.
    pub capture: Dtype,
    /// Storage feeding the factor Gram kernels (`A = aᵀa/N`, `G`). Bf16
    /// selects the bf16-packed f32-accumulate GEMM path. F32 | Bf16.
    pub factor_gram: Dtype,
    /// Storage of the running-average factors (Eq. 16–17). Bf16 stores
    /// the EMA rounded to bf16 with an f64 residual compensation term so
    /// the long-run average does not drift. F32 | Bf16.
    pub factor_ema: Dtype,
    /// Eigendecomposition *input* rounding: Bf16 rounds the averaged
    /// factor to bf16 before the (f32/f64) eigensolver runs. F32 | Bf16.
    pub eig: Dtype,
    /// Preconditioning-stage input rounding for the Eq. 13–15 GEMMs.
    /// F32 | Bf16.
    pub precond: Dtype,
    /// Wire format of the fused gradient allreduce. F32 | Bf16 | F16.
    pub grad_wire: Dtype,
    /// Wire format of the factor allreduce and eigen allgather payloads.
    /// F32 | Bf16 | F16.
    pub factor_wire: Dtype,
}

/// `(field name, wire stage?)` — the parse/validate/display table.
const STAGES: [(&str, bool); 7] = [
    ("capture", false),
    ("factor_gram", false),
    ("factor_ema", false),
    ("eig", false),
    ("precond", false),
    ("grad_wire", true),
    ("factor_wire", true),
];

impl PrecisionPolicy {
    /// The f32-everywhere policy: bitwise identical to a build without
    /// any precision plumbing.
    pub fn f32() -> Self {
        PrecisionPolicy::default()
    }

    /// The bf16-storage preset: bf16 capture, Gram, EMA storage, eig and
    /// precond inputs, and bf16 on both wires.
    pub fn bf16() -> Self {
        PrecisionPolicy {
            capture: Dtype::Bf16,
            factor_gram: Dtype::Bf16,
            factor_ema: Dtype::Bf16,
            eig: Dtype::Bf16,
            precond: Dtype::Bf16,
            grad_wire: Dtype::Bf16,
            factor_wire: Dtype::Bf16,
        }
    }

    /// True iff every stage is f32 (the bitwise-legacy fast path; callers
    /// use this to skip conversion plumbing entirely).
    pub fn is_all_f32(self) -> bool {
        self == PrecisionPolicy::default()
    }

    /// Dtype of the stage named `field` (the [`STAGES`] spelling).
    fn get(&self, field: &str) -> Option<Dtype> {
        Some(match field {
            "capture" => self.capture,
            "factor_gram" => self.factor_gram,
            "factor_ema" => self.factor_ema,
            "eig" => self.eig,
            "precond" => self.precond,
            "grad_wire" => self.grad_wire,
            "factor_wire" => self.factor_wire,
            _ => return None,
        })
    }

    fn set(&mut self, field: &str, dtype: Dtype) -> bool {
        match field {
            "capture" => self.capture = dtype,
            "factor_gram" => self.factor_gram = dtype,
            "factor_ema" => self.factor_ema = dtype,
            "eig" => self.eig = dtype,
            "precond" => self.precond = dtype,
            "grad_wire" => self.grad_wire = dtype,
            "factor_wire" => self.factor_wire = dtype,
            _ => return false,
        }
        true
    }

    /// Parse a `KFAC_PRECISION` spec: an optional preset (`f32` | `bf16`)
    /// followed by comma-separated `stage=dtype` overrides, e.g.
    /// `"bf16"`, `"capture=bf16,grad_wire=f16"`, or
    /// `"bf16,factor_wire=f32"`. Overrides apply left to right on top of
    /// the preset (default preset: f32).
    pub fn parse(spec: &str) -> Result<PrecisionPolicy, ConfigError> {
        let err = |message: String| ConfigError {
            knob: "KFAC_PRECISION",
            message,
        };
        let mut policy = PrecisionPolicy::default();
        for (i, part) in spec.split(',').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                None => {
                    if i != 0 {
                        return Err(err(format!(
                            "preset {part:?} must come first; overrides use stage=dtype"
                        )));
                    }
                    policy = match part.to_ascii_lowercase().as_str() {
                        "f32" | "fp32" => PrecisionPolicy::f32(),
                        "bf16" | "bfloat16" => PrecisionPolicy::bf16(),
                        _ => {
                            return Err(err(format!("unknown preset {part:?}; expected f32|bf16")))
                        }
                    };
                }
                Some((field, value)) => {
                    let field = field.trim().to_ascii_lowercase();
                    let dtype = Dtype::parse(value.trim()).ok_or_else(|| {
                        err(format!(
                            "{value:?} invalid for {field}; expected f32|bf16|f16"
                        ))
                    })?;
                    if !policy.set(&field, dtype) {
                        let known: Vec<&str> = STAGES.iter().map(|(n, _)| *n).collect();
                        return Err(err(format!(
                            "unknown stage {field:?}; expected one of {}",
                            known.join("|")
                        )));
                    }
                }
            }
        }
        policy.validate()?;
        Ok(policy)
    }

    /// The `KFAC_PRECISION` env override, if set. `Ok(None)` when unset;
    /// typed error (not a panic) on a malformed value, mirroring
    /// [`crate::config::EigenSolver::from_env`].
    pub fn from_env() -> Result<Option<PrecisionPolicy>, ConfigError> {
        Self::from_env_spec(std::env::var("KFAC_PRECISION").ok().as_deref())
    }

    /// Pure parse of the `KFAC_PRECISION` override (testable without
    /// touching the process environment).
    pub fn from_env_spec(value: Option<&str>) -> Result<Option<PrecisionPolicy>, ConfigError> {
        match value {
            None => Ok(None),
            Some(s) => PrecisionPolicy::parse(s).map(Some),
        }
    }

    /// Check the stage/dtype compatibility table: storage stages must be
    /// f32 or bf16 (f16's 5-bit exponent overflows on Gram diagonals);
    /// wire stages may also be f16.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, is_wire) in STAGES {
            let dtype = self.get(field).expect("table lists only real fields");
            if dtype == Dtype::F16 && !is_wire {
                return Err(ConfigError {
                    knob: "KFAC_PRECISION",
                    message: format!(
                        "{field}=f16 unsupported; storage stages are f32|bf16 \
                         (f16 overflows at 65504, below typical Gram diagonals)"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Canonical `stage=dtype,...` spelling (stable telemetry label; the
    /// inverse of [`PrecisionPolicy::parse`]).
    pub fn spec_string(&self) -> String {
        STAGES
            .iter()
            .map(|(field, _)| format!("{field}={}", self.get(field).unwrap().name()))
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl std::fmt::Display for PrecisionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_f32_and_valid() {
        let p = PrecisionPolicy::default();
        assert!(p.is_all_f32());
        p.validate().unwrap();
        for (field, _) in STAGES {
            assert_eq!(p.get(field), Some(Dtype::F32));
        }
    }

    #[test]
    fn bf16_preset_sets_every_stage() {
        let p = PrecisionPolicy::bf16();
        assert!(!p.is_all_f32());
        for (field, _) in STAGES {
            assert_eq!(p.get(field), Some(Dtype::Bf16), "{field}");
        }
        p.validate().unwrap();
    }

    #[test]
    fn parse_preset_and_overrides() {
        assert_eq!(
            PrecisionPolicy::parse("f32").unwrap(),
            PrecisionPolicy::f32()
        );
        assert_eq!(
            PrecisionPolicy::parse("bf16").unwrap(),
            PrecisionPolicy::bf16()
        );
        let p = PrecisionPolicy::parse("capture=bf16,grad_wire=f16").unwrap();
        assert_eq!(p.capture, Dtype::Bf16);
        assert_eq!(p.grad_wire, Dtype::F16);
        assert_eq!(p.factor_gram, Dtype::F32, "untouched stages stay f32");
        // Preset then override: everything bf16 except the factor wire.
        let p = PrecisionPolicy::parse("bf16,factor_wire=f32").unwrap();
        assert_eq!(p.factor_wire, Dtype::F32);
        assert_eq!(p.capture, Dtype::Bf16);
        // Whitespace and empty segments are tolerated.
        let p = PrecisionPolicy::parse(" bf16 , grad_wire = f16 ,").unwrap();
        assert_eq!(p.grad_wire, Dtype::F16);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in [
            "int8",
            "capture=f64",
            "warp_drive=bf16",
            "capture=bf16,bf16", // preset after an override
            "capture=f16",       // f16 on a storage stage
            "eig=f16",
        ] {
            let e = PrecisionPolicy::parse(bad).unwrap_err();
            assert_eq!(e.knob, "KFAC_PRECISION", "{bad}");
        }
        // Wire stages do accept f16.
        PrecisionPolicy::parse("grad_wire=f16,factor_wire=f16").unwrap();
    }

    #[test]
    fn env_spec_round_trips_through_display() {
        assert_eq!(PrecisionPolicy::from_env_spec(None).unwrap(), None);
        let p = PrecisionPolicy::parse("bf16,grad_wire=f16").unwrap();
        let reparsed = PrecisionPolicy::parse(&p.spec_string()).unwrap();
        assert_eq!(p, reparsed);
    }
}
