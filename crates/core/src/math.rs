//! The K-FAC preconditioning math: Equations 11–15 and 18.
//!
//! The weight gradient of layer `i` is the `dim_G × dim_A` matrix
//! `∇L`. Its Fisher block is `F̂ᵢ = Aᵢ₋₁ ⊗ Gᵢ` (Eq. 5); with the
//! row-major vec convention used throughout this codebase the damped
//! preconditioner acts as
//!
//! ```text
//! vec(precond) = (G ⊗ A + γI)⁻¹ vec(∇L)
//! ```
//!
//! which the two paths evaluate as:
//!
//! * **Eigen** (Eq. 13–15): `V₁ = Q_Gᵀ ∇L Q_A`,
//!   `V₂ = V₁ ⊘ (v_G v_Aᵀ + γ)`, `precond = Q_G V₂ Q_Aᵀ` — *exact* for
//!   the damped Kronecker product, no explicit inverse ever formed.
//! * **Explicit inverse** (Eq. 11–12):
//!   `precond = (G + γI)⁻¹ ∇L (A + γI)⁻¹` — the variant whose
//!   accuracy degrades at large batch in Table I (it dampens each factor
//!   separately, a different and cruder regularization).

use crate::config::{EigenSolver, RandEigPolicy};
use kfac_tensor::{
    eigh, eigh_randomized, eigh_tridiag, EigenDecomposition, LinAlgError, Matrix, RandEigOptions,
};

/// Eigen-path preconditioning state for one factor pair.
#[derive(Debug, Clone)]
pub struct EigenPair {
    /// Eigendecomposition of the activation factor `A`.
    pub a: EigenDecomposition,
    /// Eigendecomposition of the gradient factor `G`.
    pub g: EigenDecomposition,
}

/// Explicit-inverse state for one factor pair.
#[derive(Debug, Clone)]
pub struct InversePair {
    /// `(A + γI)⁻¹`.
    pub a_inv: Matrix,
    /// `(G + γI)⁻¹`.
    pub g_inv: Matrix,
}

/// Eigendecompose one (symmetrized) factor with the default Jacobi
/// backend.
pub fn decompose_factor(factor: &Matrix) -> Result<EigenDecomposition, LinAlgError> {
    decompose_factor_with(factor, EigenSolver::Jacobi)
}

/// Eigendecompose one (symmetrized) factor with an explicit backend.
pub fn decompose_factor_with(
    factor: &Matrix,
    solver: EigenSolver,
) -> Result<EigenDecomposition, LinAlgError> {
    let mut m = factor.clone();
    m.symmetrize();
    match solver {
        EigenSolver::Jacobi => eigh(&m),
        // Jacobi is the robustness backstop (it converges on anything
        // symmetric); fall back to it on the rare QL non-convergence
        // rather than aborting a training run.
        EigenSolver::TridiagonalQl => eigh_tridiag(&m).or_else(|_| eigh(&m)),
        EigenSolver::Randomized => decompose_symmetrized_randomized(&m, &RandEigPolicy::default()),
    }
}

/// Eigendecompose one (symmetrized) factor with the randomized backend
/// under an explicit adaptive-rank policy (the preconditioner passes
/// `KfacConfig::rand_eig`).
pub fn decompose_factor_randomized(
    factor: &Matrix,
    policy: &RandEigPolicy,
) -> Result<EigenDecomposition, LinAlgError> {
    let mut m = factor.clone();
    m.symmetrize();
    decompose_symmetrized_randomized(&m, policy)
}

/// Adaptive-rank randomized decomposition of an already-symmetrized
/// factor: start at `policy.initial_rank(n)`, double until the captured
/// spectral mass reaches `policy.mass_threshold`, and fall back to the
/// exact QL path (Jacobi backstop) on small factors, rank-cap
/// exhaustion, or sketch failure — so the *worst* case of this backend
/// is exactly the exact backend, never something less accurate.
fn decompose_symmetrized_randomized(
    m: &Matrix,
    policy: &RandEigPolicy,
) -> Result<EigenDecomposition, LinAlgError> {
    let n = m.rows();
    if n < policy.min_dim {
        return eigh_tridiag(m).or_else(|_| eigh(m));
    }
    let max_rank = policy.max_rank(n);
    let mut rank = policy.initial_rank(n).min(max_rank);
    loop {
        let opts = RandEigOptions {
            rank,
            oversample: policy.oversample,
            power_iters: policy.power_iters,
            seed: policy.seed,
        };
        match eigh_randomized(m, &opts) {
            Ok(re) if re.captured_mass >= policy.mass_threshold => return Ok(re.eig),
            Ok(_) if rank < max_rank => rank = (rank * 2).min(max_rank),
            // Capture stalled at the rank cap (slow spectrum) or the
            // small dense solve failed: exact fallback.
            _ => return eigh_tridiag(m).or_else(|_| eigh(m)),
        }
    }
}

/// Explicitly invert one damped factor in single precision.
///
/// Deliberately FP32 end-to-end (Cholesky with f32 accumulation,
/// Gauss–Jordan f32 fallback): this mirrors `torch.inverse` on the
/// paper's V100s, whose conditioning error on ill-conditioned factors is
/// precisely what Table I blames for the explicit-inverse variant's
/// accuracy loss ("the FIM approximation can be ill-conditioned for
/// inverting", §II-C). Computing this in f64 would erase the phenomenon
/// the paper measures.
pub fn invert_factor(factor: &Matrix, damping: f32) -> Result<Matrix, LinAlgError> {
    let mut m = factor.clone();
    m.symmetrize();
    m.add_diag(damping);
    match spd_inverse_f32(&m) {
        Ok(inv) => Ok(inv),
        Err(_) => invert_f32(&m),
    }
}

/// FP32 Cholesky factorization + inverse (no f64 accumulation).
fn spd_inverse_f32(a: &Matrix) -> Result<Matrix, LinAlgError> {
    let n = a.rows();
    // Factor: A = L Lᵀ, all arithmetic f32.
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinAlgError::NotPositiveDefinite);
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    // Invert by f32 forward/back substitution against identity columns.
    let mut inv = Matrix::zeros(n, n);
    let mut y = vec![0.0f32; n];
    let mut x = vec![0.0f32; n];
    for col in 0..n {
        for i in 0..n {
            let mut sum = if i == col { 1.0f32 } else { 0.0 };
            for k in 0..i {
                sum -= l[(i, k)] * y[k];
            }
            y[i] = sum / l[(i, i)];
        }
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[(k, i)] * x[k];
            }
            x[i] = sum / l[(i, i)];
            inv[(i, col)] = x[i];
        }
    }
    inv.symmetrize();
    Ok(inv)
}

/// FP32 Gauss–Jordan inverse with partial pivoting (fallback).
fn invert_f32(a: &Matrix) -> Result<Matrix, LinAlgError> {
    let n = a.rows();
    let mut m: Vec<f32> = a.as_slice().to_vec();
    let mut inv: Vec<f32> = vec![0.0; n * n];
    for i in 0..n {
        inv[i * n + i] = 1.0;
    }
    let scale = m.iter().fold(0.0f32, |acc, &x| acc.max(x.abs())).max(1e-30);
    let tol = 1e-6 * scale;
    for col in 0..n {
        let mut pivot_row = col;
        let mut pivot_val = m[col * n + col].abs();
        for r in (col + 1)..n {
            let v = m[r * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val <= tol {
            return Err(LinAlgError::Singular);
        }
        if pivot_row != col {
            for c in 0..n {
                m.swap(col * n + c, pivot_row * n + c);
                inv.swap(col * n + c, pivot_row * n + c);
            }
        }
        let p = m[col * n + col];
        for c in 0..n {
            m[col * n + c] /= p;
            inv[col * n + c] /= p;
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = m[r * n + col];
            if f == 0.0 {
                continue;
            }
            for c in 0..n {
                m[r * n + c] -= f * m[col * n + c];
                inv[r * n + c] -= f * inv[col * n + c];
            }
        }
    }
    Ok(Matrix::from_vec(n, n, inv))
}

/// Eigen-path preconditioned gradient (Eq. 13–15).
///
/// Handles both exact and randomized-truncated decompositions. A
/// truncated factor stores an incomplete eigenbasis (zero-padded
/// leading columns, see [`EigenDecomposition::truncated_rank`]); the
/// discarded modes all carry eigenvalue ≈ 0, so every Kronecker-mode
/// pair touching the complement shares the damped denominator γ and the
/// complement contribution collapses to `(∇L − Q_G V₁ Q_Aᵀ)/γ`. The
/// exact path is untouched so full decompositions precondition
/// bit-for-bit as before.
pub fn precondition_eigen(pair: &EigenPair, grad: &Matrix, damping: f32) -> Matrix {
    let (dg, da) = grad.shape();
    assert_eq!(pair.g.eigenvectors.rows(), dg, "G dimension mismatch");
    assert_eq!(pair.a.eigenvectors.rows(), da, "A dimension mismatch");

    // V₁ = Q_Gᵀ ∇L Q_A
    let v1 = pair
        .g
        .eigenvectors
        .matmul_tn(grad)
        .matmul(&pair.a.eigenvectors);

    let truncated = pair.g.truncated_rank().is_some() || pair.a.truncated_rank().is_some();
    let complement = if truncated {
        // Residual of ∇L outside span(Q_G) ⊗ span(Q_A): padded columns
        // are exactly zero, so Q V₁ Qᵀ only reconstructs the kept modes.
        let mut proj = pair
            .g
            .eigenvectors
            .matmul(&v1)
            .matmul_nt(&pair.a.eigenvectors);
        let inv_gamma = 1.0 / damping;
        for (p, g) in proj.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            *p = (g - *p) * inv_gamma;
        }
        Some(proj)
    } else {
        None
    };

    // V₂ = V₁ ⊘ (v_G v_Aᵀ + γ). Clamp eigenvalues at zero: factors are
    // PSD in exact arithmetic; tiny negative round-off must not flip the
    // sign of the damped denominator.
    let mut v2 = v1;
    for i in 0..dg {
        let lg = pair.g.eigenvalues[i].max(0.0);
        let row = v2.row_mut(i);
        for (j, v) in row.iter_mut().enumerate() {
            let la = pair.a.eigenvalues[j].max(0.0);
            *v /= lg * la + damping;
        }
    }

    // precond = Q_G V₂ Q_Aᵀ (+ complement/γ when truncated)
    let mut out = pair
        .g
        .eigenvectors
        .matmul(&v2)
        .matmul_nt(&pair.a.eigenvectors);
    if let Some(c) = complement {
        for (o, r) in out.as_mut_slice().iter_mut().zip(c.as_slice()) {
            *o += *r;
        }
    }
    out
}

/// Explicit-inverse-path preconditioned gradient (Eq. 12).
pub fn precondition_inverse(pair: &InversePair, grad: &Matrix) -> Matrix {
    pair.g_inv.matmul(grad).matmul(&pair.a_inv)
}

/// The KL-clip scale ν of Eq. 18:
/// `ν = min(1, √(κ / (lr² Σᵢ |⟨precondᵢ, ∇Lᵢ⟩|)))`.
///
/// `pairs` iterates `(preconditioned, raw_gradient)` per layer. All ranks
/// hold identical gradients (post-allreduce), so ν is identical everywhere
/// with no extra communication.
pub fn kl_clip_nu<'a>(
    pairs: impl Iterator<Item = (&'a Matrix, &'a Matrix)>,
    kappa: f32,
    lr: f32,
) -> f32 {
    let mut vg_sum = 0.0f64;
    for (precond, grad) in pairs {
        vg_sum += (precond.dot(grad) * lr * lr).abs() as f64;
    }
    if vg_sum <= 0.0 {
        return 1.0;
    }
    ((kappa as f64 / vg_sum).sqrt() as f32).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfac_tensor::{kron, Rng64};

    fn random_spd(n: usize, rng: &mut Rng64) -> Matrix {
        let x = Matrix::from_vec(2 * n, n, (0..2 * n * n).map(|_| rng.normal_f32()).collect());
        let mut a = x.gram();
        a.scale(1.0 / (2 * n) as f32);
        a
    }

    fn random_matrix(r: usize, c: usize, rng: &mut Rng64) -> Matrix {
        Matrix::from_vec(r, c, (0..r * c).map(|_| rng.normal_f32()).collect())
    }

    /// Dense ground truth: unvec((G ⊗ A + γI)⁻¹ vec_r(∇L)).
    fn dense_reference(a: &Matrix, g: &Matrix, grad: &Matrix, gamma: f32) -> Matrix {
        let mut big = kron(g, a);
        big.add_diag(gamma);
        let inv = kfac_tensor::invert(&big).unwrap();
        let v = inv.matvec(grad.as_slice());
        Matrix::from_vec(grad.rows(), grad.cols(), v)
    }

    #[test]
    fn eigen_path_matches_dense_kronecker_inverse() {
        let mut rng = Rng64::new(1);
        let a = random_spd(4, &mut rng);
        let g = random_spd(3, &mut rng);
        let grad = random_matrix(3, 4, &mut rng);
        let gamma = 0.05;

        let pair = EigenPair {
            a: decompose_factor(&a).unwrap(),
            g: decompose_factor(&g).unwrap(),
        };
        let fast = precondition_eigen(&pair, &grad, gamma);
        let dense = dense_reference(&a, &g, &grad, gamma);
        assert!(
            fast.max_abs_diff(&dense) < 1e-3,
            "diff {}",
            fast.max_abs_diff(&dense)
        );
    }

    #[test]
    fn inverse_path_matches_separately_damped_kronecker() {
        // Explicit path = (G+γI)⁻¹ ⊗ (A+γI)⁻¹ — a *different* operator
        // than the eigen path's (G⊗A + γI)⁻¹.
        let mut rng = Rng64::new(2);
        let a = random_spd(3, &mut rng);
        let g = random_spd(2, &mut rng);
        let grad = random_matrix(2, 3, &mut rng);
        let gamma = 0.1;

        let pair = InversePair {
            a_inv: invert_factor(&a, gamma).unwrap(),
            g_inv: invert_factor(&g, gamma).unwrap(),
        };
        let fast = precondition_inverse(&pair, &grad);

        let mut ad = a.clone();
        ad.add_diag(gamma);
        let mut gd = g.clone();
        gd.add_diag(gamma);
        let big = kron(
            &kfac_tensor::invert(&gd).unwrap(),
            &kfac_tensor::invert(&ad).unwrap(),
        );
        let v = big.matvec(grad.as_slice());
        let dense = Matrix::from_vec(2, 3, v);
        assert!(fast.max_abs_diff(&dense) < 1e-3);
    }

    #[test]
    fn paths_agree_when_damping_is_negligible() {
        // With well-conditioned factors and tiny γ both paths approximate
        // (G ⊗ A)⁻¹ and must nearly agree.
        let mut rng = Rng64::new(3);
        let mut a = random_spd(4, &mut rng);
        a.add_diag(1.0);
        let mut g = random_spd(3, &mut rng);
        g.add_diag(1.0);
        let grad = random_matrix(3, 4, &mut rng);
        let gamma = 1e-6;

        let e = precondition_eigen(
            &EigenPair {
                a: decompose_factor(&a).unwrap(),
                g: decompose_factor(&g).unwrap(),
            },
            &grad,
            gamma,
        );
        let i = precondition_inverse(
            &InversePair {
                a_inv: invert_factor(&a, gamma).unwrap(),
                g_inv: invert_factor(&g, gamma).unwrap(),
            },
            &grad,
        );
        assert!(e.max_abs_diff(&i) < 1e-2, "diff {}", e.max_abs_diff(&i));
    }

    #[test]
    fn identity_factors_scale_by_inverse_damped_one() {
        // A = G = I: precond = grad / (1 + γ).
        let a = Matrix::identity(3);
        let g = Matrix::identity(2);
        let mut rng = Rng64::new(4);
        let grad = random_matrix(2, 3, &mut rng);
        let gamma = 0.5;
        let out = precondition_eigen(
            &EigenPair {
                a: decompose_factor(&a).unwrap(),
                g: decompose_factor(&g).unwrap(),
            },
            &grad,
            gamma,
        );
        let mut expect = grad.clone();
        expect.scale(1.0 / 1.5);
        assert!(out.max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn negative_roundoff_eigenvalues_are_clamped() {
        // A PSD factor with an exactly-zero mode: eigenvalue may come out
        // as −1e-9; the damped denominator must stay ≥ γ.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]); // rank 1
        let g = Matrix::identity(2);
        let grad = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let out = precondition_eigen(
            &EigenPair {
                a: decompose_factor(&a).unwrap(),
                g: decompose_factor(&g).unwrap(),
            },
            &grad,
            0.01,
        );
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
        assert!(out.max_abs() <= 1.0 / 0.01 + 1.0);
    }

    #[test]
    fn kl_clip_caps_at_one_and_scales_down() {
        let mut rng = Rng64::new(5);
        let p = random_matrix(3, 3, &mut rng);
        let g = p.clone();
        // Huge product → ν < 1.
        let nu_small = kl_clip_nu([(&p, &g)].into_iter(), 1e-3, 1.0);
        assert!(nu_small < 1.0);
        // Tiny lr → ν = 1.
        let nu_one = kl_clip_nu([(&p, &g)].into_iter(), 1e-3, 1e-6);
        assert_eq!(nu_one, 1.0);
        // Zero grads → ν = 1 (no NaN).
        let z = Matrix::zeros(2, 2);
        assert_eq!(kl_clip_nu([(&z, &z)].into_iter(), 1e-3, 0.1), 1.0);
    }

    /// SPD factor with geometrically decaying spectrum: Gram of a
    /// column-scaled Gaussian plus a small diagonal ridge.
    fn decaying_spd(n: usize, decay: f64, seed: u64) -> Matrix {
        let mut rng = Rng64::new(seed);
        let mut x = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.normal_f32()).collect());
        for i in 0..n {
            let s = decay.powi(i as i32) as f32;
            for v in x.row_mut(i) {
                *v *= s;
            }
        }
        let mut a = x.gram();
        a.add_diag(1e-5);
        a
    }

    #[test]
    fn truncated_pair_matches_dense_reference_when_tail_is_zero() {
        // Rank-deficient G: the dropped modes carry eigenvalue ≈ 0, so a
        // hand-truncated decomposition must reproduce the dense inverse.
        let mut rng = Rng64::new(7);
        let a = random_spd(3, &mut rng);
        let x = random_matrix(2, 4, &mut rng); // rank ≤ 2
        let g = x.matmul_tn(&x); // 4×4, rank 2
        let grad = random_matrix(4, 3, &mut rng);
        let gamma = 0.05;

        let mut ge = decompose_factor(&g).unwrap();
        // Zero the two near-null leading modes (ascending order) to forge
        // the randomized backend's zero-padded layout.
        for j in 0..2 {
            ge.eigenvalues[j] = 0.0;
            for i in 0..4 {
                ge.eigenvectors[(i, j)] = 0.0;
            }
        }
        assert_eq!(ge.truncated_rank(), Some(2));

        let pair = EigenPair {
            a: decompose_factor(&a).unwrap(),
            g: ge,
        };
        let fast = precondition_eigen(&pair, &grad, gamma);
        let dense = dense_reference(&a, &g, &grad, gamma);
        assert!(
            fast.max_abs_diff(&dense) < 1e-3,
            "diff {}",
            fast.max_abs_diff(&dense)
        );
    }

    #[test]
    fn randomized_backend_preconditions_close_to_exact_at_high_mass() {
        let g = decaying_spd(96, 0.82, 11);
        let a = {
            let mut rng = Rng64::new(12);
            random_spd(5, &mut rng)
        };
        let mut rng = Rng64::new(13);
        let grad = random_matrix(96, 5, &mut rng);
        let gamma = 0.03;

        let policy = crate::config::RandEigPolicy {
            min_dim: 1,
            mass_threshold: 0.999,
            ..Default::default()
        };
        let ge = decompose_factor_randomized(&g, &policy).unwrap();
        let rank = ge.truncated_rank().expect("decay spectrum should truncate");
        assert!(rank < 96, "rank {rank} should be below full dimension");

        let exact = precondition_eigen(
            &EigenPair {
                a: decompose_factor(&a).unwrap(),
                g: decompose_factor(&g).unwrap(),
            },
            &grad,
            gamma,
        );
        let approx = precondition_eigen(
            &EigenPair {
                a: decompose_factor(&a).unwrap(),
                g: ge,
            },
            &grad,
            gamma,
        );
        let rel = approx.max_abs_diff(&exact) / exact.max_abs().max(1e-12);
        assert!(rel < 0.05, "relative precondition error {rel}");
    }

    #[test]
    fn randomized_backend_falls_back_to_exact_on_flat_spectrum() {
        // Near-identity factor: no low-rank structure, so the adaptive
        // loop must exhaust its rank cap and hand back the exact result.
        let mut g = {
            let mut rng = Rng64::new(14);
            random_spd(100, &mut rng)
        };
        g.scale(1e-3);
        g.add_diag(1.0); // eigenvalues clustered near 1 → flat spectrum
        let policy = crate::config::RandEigPolicy {
            min_dim: 1,
            mass_threshold: 0.999,
            max_rank_frac: 0.25,
            ..Default::default()
        };
        let e = decompose_factor_randomized(&g, &policy).unwrap();
        assert_eq!(e.truncated_rank(), None, "flat spectrum must go exact");
        let exact = decompose_factor(&g).unwrap();
        let lmax = exact.eigenvalues.last().copied().unwrap();
        let emax = e.eigenvalues.last().copied().unwrap();
        assert!((lmax - emax).abs() / lmax < 1e-4);
    }

    #[test]
    fn eigen_path_reduces_to_sgd_direction_scaling() {
        // Preconditioning with the true Fisher block of an isotropic
        // problem must keep the gradient direction (up to scaling).
        let mut rng = Rng64::new(6);
        let a = Matrix::identity(4);
        let g = Matrix::identity(3);
        let grad = random_matrix(3, 4, &mut rng);
        let out = precondition_eigen(
            &EigenPair {
                a: decompose_factor(&a).unwrap(),
                g: decompose_factor(&g).unwrap(),
            },
            &grad,
            0.001,
        );
        // cos similarity 1.
        let dot = out.dot(&grad);
        let cos = dot / (out.frobenius_norm() * grad.frobenius_norm());
        assert!((cos - 1.0).abs() < 1e-5);
    }
}
