//! # kfac
//!
//! The core contribution of *Convolutional Neural Network Training with
//! Distributed K-FAC* (Pauloski et al., SC 2020), reproduced in Rust: a
//! **distributed K-FAC gradient preconditioner** that drops in front of
//! any first-order optimizer.
//!
//! ## Usage (the Rust analogue of the paper's Listing 1)
//!
//! ```no_run
//! use kfac::{Kfac, KfacConfig};
//! use kfac_collectives::{Communicator, LocalComm, ReduceOp, TrafficClass};
//! use kfac_nn::{Layer, Mode, CrossEntropyLoss};
//! # fn get_model() -> kfac_nn::Sequential { unimplemented!() }
//! # fn get_batch() -> (kfac_tensor::Tensor4, Vec<usize>) { unimplemented!() }
//!
//! let mut model = get_model();
//! let comm = LocalComm::new();
//! let mut optimizer = kfac_optim::Sgd::paper_default(5e-4);
//! let mut preconditioner = Kfac::new(&mut model, KfacConfig::default());
//! let criterion = CrossEntropyLoss::with_smoothing(0.1);
//!
//! for step in 0..100 {
//!     let (data, target) = get_batch();
//!     model.zero_grad();
//!     model.set_capture(preconditioner.needs_capture());
//!     let output = model.forward(&data, Mode::Train);
//!     let (_loss, grad) = criterion.forward(&output, &target);
//!     model.backward(&grad);
//!
//!     // optimizer.synchronize() — average gradients across ranks:
//!     let mut flat = Vec::new();
//!     model.visit_params("", &mut |_, _, g| flat.extend_from_slice(g));
//!     comm.allreduce_tagged(&mut flat, ReduceOp::Average, TrafficClass::Gradient);
//!     let mut off = 0;
//!     model.visit_params("", &mut |_, _, g| {
//!         g.copy_from_slice(&flat[off..off + g.len()]);
//!         off += g.len();
//!     });
//!
//!     preconditioner.step(&mut model, &comm, 0.1); // KFAC.step()
//!     use kfac_optim::Optimizer;
//!     optimizer.step(&mut model, 0.1);             // optimizer.step()
//! }
//! ```
//!
//! ## Module map
//!
//! * [`config`] — every §V-C hyper-parameter: damping + decay, KL-clip κ,
//!   `kfac-update-freq` + decay, factor-update multiplier, inversion
//!   method, distribution strategy, placement policy.
//! * [`math`] — Eq. 11–15 and 18: the eigendecomposition path, the
//!   explicit-inverse path, and KL-clipping, property-tested against
//!   dense Kronecker ground truth.
//! * [`distribution`] — round-robin factor placement (the paper's), the
//!   layer-wise scheme of Osawa et al. \[6\] for K-FAC-lw, and the
//!   size-balanced LPT policy the paper proposes as future work.
//! * [`precision`] — [`PrecisionPolicy`]: per-stage dtype selection for
//!   the mixed-precision substrate (bf16 storage / f32 accumulate, with
//!   f32-everywhere as the bitwise-identical default).
//! * [`preconditioner`] — [`Kfac`]: Algorithm 1 end-to-end over a
//!   [`Communicator`](kfac_collectives::Communicator).
//! * [`stats`] — per-stage timing (Table V / Fig. 10 instrumentation).

pub mod config;
pub mod distribution;
pub mod math;
pub mod precision;
pub mod preconditioner;
pub mod stats;

pub use config::{
    ConfigError, DistStrategy, EigenSolver, InversionMethod, KfacConfig, PlacementPolicy,
    RandEigPolicy,
};
pub use distribution::{assign_factors, factor_descs, FactorDesc, FactorKind};
pub use precision::PrecisionPolicy;
pub use preconditioner::Kfac;
pub use stats::StageStats;
