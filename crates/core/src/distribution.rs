//! Work distribution: assigning factors (or layers) to ranks.
//!
//! The heart of the paper's scalability story. K-FAC-opt assigns each
//! *factor* to a rank in "a greedy, round-robin fashion" (§VI-C4), which
//! doubles utilization over the per-layer scheme but leaves the size
//! imbalance quantified in Table VI (min vs max worker speedup). The
//! size-balanced LPT policy implements the paper's proposed fix: "a
//! placement policy that uses factor size as a heuristic for the eigen
//! decomposition time".

use crate::config::PlacementPolicy;

/// Which half of a layer's Kronecker pair a factor is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorKind {
    /// Activation factor `A_{i−1}`.
    A,
    /// Gradient factor `G_i`.
    G,
}

/// One assignable factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactorDesc {
    /// Global factor id: `2·layer` for A, `2·layer + 1` for G.
    pub id: usize,
    /// Owning layer index.
    pub layer: usize,
    /// A or G.
    pub kind: FactorKind,
    /// Matrix dimension.
    pub dim: usize,
}

impl FactorDesc {
    /// Eigendecomposition cost heuristic: `dim³` (dense symmetric eig).
    pub fn eig_cost(&self) -> u64 {
        (self.dim as u64).pow(3)
    }
}

/// Build the factor list for layers with dims `(dim_A, dim_G)`.
pub fn factor_descs(layer_dims: &[(usize, usize)]) -> Vec<FactorDesc> {
    let mut out = Vec::with_capacity(layer_dims.len() * 2);
    for (layer, &(da, dg)) in layer_dims.iter().enumerate() {
        out.push(FactorDesc {
            id: 2 * layer,
            layer,
            kind: FactorKind::A,
            dim: da,
        });
        out.push(FactorDesc {
            id: 2 * layer + 1,
            layer,
            kind: FactorKind::G,
            dim: dg,
        });
    }
    out
}

/// Assignment of factors to ranks: `assignment[factor_id] = rank`.
///
/// Deterministic given identical inputs, so every rank computes the same
/// assignment without communication (the property Algorithm 1 line 9
/// relies on).
pub fn assign_factors(
    policy: PlacementPolicy,
    factors: &[FactorDesc],
    world_size: usize,
) -> Vec<usize> {
    assert!(world_size > 0);
    match policy {
        PlacementPolicy::RoundRobin => {
            // Greedy round-robin by id — the paper's scheme. Note ids
            // interleave A and G, which is exactly what "the eigen
            // decomposition for A_i and G_i can occur on different
            // workers" (Fig. 3) requires.
            factors.iter().map(|f| f.id % world_size).collect()
        }
        PlacementPolicy::SizeBalanced => {
            // LPT: biggest factor first onto the least-loaded rank.
            let mut order: Vec<usize> = (0..factors.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse((factors[i].eig_cost(), factors[i].id)));
            let mut load = vec![0u64; world_size];
            let mut assignment = vec![0usize; factors.len()];
            for &i in &order {
                // Least-loaded rank, lowest rank wins ties (determinism).
                let rank = (0..world_size)
                    .min_by_key(|&r| (load[r], r))
                    .expect("world>0");
                assignment[factors[i].id] = rank;
                load[rank] += factors[i].eig_cost();
            }
            assignment
        }
    }
}

/// Assignment of *layers* to ranks for the K-FAC-lw strategy: layer `i`
/// is owned by rank `i mod world` (the Osawa et al. \[6\] scheme).
pub fn assign_layers_lw(num_layers: usize, world_size: usize) -> Vec<usize> {
    assert!(world_size > 0);
    (0..num_layers).map(|l| l % world_size).collect()
}

/// Per-rank eigendecomposition cost under an assignment — the quantity
/// whose min/max ratio Table VI reports.
pub fn per_rank_cost(factors: &[FactorDesc], assignment: &[usize], world_size: usize) -> Vec<u64> {
    let mut load = vec![0u64; world_size];
    for f in factors {
        load[assignment[f.id]] += f.eig_cost();
    }
    load
}

/// Makespan (slowest rank) of an assignment — the eig-stage completion
/// time is "bounded by the slowest worker" (§VI-C4).
pub fn makespan(factors: &[FactorDesc], assignment: &[usize], world_size: usize) -> u64 {
    per_rank_cost(factors, assignment, world_size)
        .into_iter()
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_factors() -> Vec<FactorDesc> {
        // Dims chosen to be imbalanced, like a real ResNet's factor sizes.
        factor_descs(&[(576, 64), (64, 64), (4608, 512), (9, 16), (2049, 1000)])
    }

    #[test]
    fn descs_enumerate_all_factors_once() {
        let f = sample_factors();
        assert_eq!(f.len(), 10);
        for (i, d) in f.iter().enumerate() {
            assert_eq!(d.id, i);
        }
        assert_eq!(f[0].kind, FactorKind::A);
        assert_eq!(f[1].kind, FactorKind::G);
        assert_eq!(f[4].dim, 4608);
    }

    #[test]
    fn round_robin_cycles_ranks() {
        let f = sample_factors();
        let a = assign_factors(PlacementPolicy::RoundRobin, &f, 4);
        assert_eq!(a, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn a_and_g_of_same_layer_can_land_on_different_ranks() {
        // The doubled-utilization property of §IV-C.
        let f = sample_factors();
        let a = assign_factors(PlacementPolicy::RoundRobin, &f, 2);
        assert_ne!(a[0], a[1], "A and G of layer 0 on different ranks");
    }

    #[test]
    fn every_factor_assigned_exactly_once() {
        let f = sample_factors();
        for policy in [PlacementPolicy::RoundRobin, PlacementPolicy::SizeBalanced] {
            let a = assign_factors(policy, &f, 3);
            assert_eq!(a.len(), f.len());
            assert!(a.iter().all(|&r| r < 3));
        }
    }

    #[test]
    fn lpt_beats_round_robin_makespan() {
        let f = sample_factors();
        for world in [2, 4, 8] {
            let rr = assign_factors(PlacementPolicy::RoundRobin, &f, world);
            let lpt = assign_factors(PlacementPolicy::SizeBalanced, &f, world);
            assert!(
                makespan(&f, &lpt, world) <= makespan(&f, &rr, world),
                "LPT must not be worse at world={world}"
            );
        }
    }

    #[test]
    fn imbalance_grows_with_scale_under_round_robin() {
        // Table VI's phenomenon: as ranks grow, min load shrinks much
        // faster than max load (the rank holding the 4608-dim factor
        // stays slow).
        let f = sample_factors();
        let cost = |world: usize| {
            let a = assign_factors(PlacementPolicy::RoundRobin, &f, world);
            let loads = per_rank_cost(&f, &a, world);
            let max = *loads.iter().max().unwrap() as f64;
            let min = *loads.iter().filter(|&&l| l > 0).min().unwrap() as f64;
            max / min
        };
        assert!(cost(8) > cost(2), "imbalance ratio should grow with scale");
    }

    #[test]
    fn lw_assignment_is_per_layer() {
        let a = assign_layers_lw(5, 2);
        assert_eq!(a, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn per_rank_cost_sums_to_total() {
        let f = sample_factors();
        let a = assign_factors(PlacementPolicy::SizeBalanced, &f, 4);
        let loads = per_rank_cost(&f, &a, 4);
        let total: u64 = f.iter().map(|d| d.eig_cost()).sum();
        assert_eq!(loads.iter().sum::<u64>(), total);
    }

    #[test]
    fn deterministic_assignments() {
        let f = sample_factors();
        for policy in [PlacementPolicy::RoundRobin, PlacementPolicy::SizeBalanced] {
            assert_eq!(assign_factors(policy, &f, 5), assign_factors(policy, &f, 5));
        }
    }
}
