//! Per-stage timing statistics.
//!
//! Table V of the paper profiles a K-FAC update step into factor
//! computation/communication and eigendecomposition
//! computation/communication; Fig. 10 tracks factor-computation time
//! across model sizes. [`StageStats`] accumulates exactly those buckets so
//! the harness can regenerate both.

use std::time::Duration;

/// Accumulated wall time and invocation counts per K-FAC stage.
#[derive(Debug, Clone, Default)]
pub struct StageStats {
    /// Local Kronecker-factor computation (Algorithm 1 line 6).
    pub factor_comp: Duration,
    /// Factor allreduce (line 8).
    pub factor_comm: Duration,
    /// Eigendecomposition of assigned factors (lines 10–17).
    pub eig_comp: Duration,
    /// Eigendecomposition allgather (line 18).
    pub eig_comm: Duration,
    /// Local gradient preconditioning (line 20).
    pub precond: Duration,
    /// Number of factor-update iterations.
    pub factor_updates: u64,
    /// Number of eig-update iterations.
    pub eig_updates: u64,
    /// Total preconditioned iterations.
    pub steps: u64,
    /// Iterations that reused stale factor averages after a failed or
    /// corrupted factor exchange (graceful degradation, not schedule).
    pub stale_factor_steps: u64,
    /// Factors degraded to the damped-identity second-order state
    /// (eigendecomposition failure or corrupted payload).
    pub eig_fallbacks: u64,
    /// Compensated factor-EMA folds performed (bf16 EMA storage only;
    /// 0 on the default f32 policy).
    pub ema_comp_folds: u64,
    /// Largest |f64 residual| the compensated EMA has carried — the
    /// drift an uncompensated bf16 EMA would have accumulated.
    pub ema_comp_mag: f64,
    /// Layer preconditionings that ran with no second-order state at
    /// all (implicit damped identity).
    pub identity_preconds: u64,
    /// Worst per-factor condition number seen in the most recent
    /// second-order update on this rank (0 when none yet, or when no
    /// telemetry recorder is installed).
    pub max_cond: f64,
    /// KL-clip scale ν applied on the most recent iteration (1 = no
    /// clipping; 0 when no iteration has run).
    pub last_nu: f64,
    /// ‖preconditioned grad‖ / ‖raw grad‖ on the most recent iteration
    /// (0 when no telemetry recorder is installed).
    pub precond_ratio: f64,
    /// Iterations elapsed since the last completed second-order update.
    pub staleness_age: u64,
    /// Largest per-factor eigenbasis rank retained in the most recent
    /// second-order update (the factor dimension when the exact backends
    /// ran; less when the randomized backend truncated; 0 when none yet
    /// or no telemetry recorder is installed).
    pub eig_rank: u64,
    /// Smallest per-factor captured spectral mass (Σλ_kept / tr F) in the
    /// most recent second-order update — 1.0 for exact decompositions,
    /// the adaptive-rank capture for truncated ones (0 when none yet or
    /// no telemetry recorder is installed).
    pub eig_captured_mass: f64,
}

impl StageStats {
    /// Fresh, zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean factor-computation time per factor update, in milliseconds.
    pub fn factor_comp_ms(&self) -> f64 {
        if self.factor_updates == 0 {
            0.0
        } else {
            self.factor_comp.as_secs_f64() * 1e3 / self.factor_updates as f64
        }
    }

    /// Mean factor-communication time per factor update, in milliseconds.
    pub fn factor_comm_ms(&self) -> f64 {
        if self.factor_updates == 0 {
            0.0
        } else {
            self.factor_comm.as_secs_f64() * 1e3 / self.factor_updates as f64
        }
    }

    /// Mean eigendecomposition time per eig update, in milliseconds.
    pub fn eig_comp_ms(&self) -> f64 {
        if self.eig_updates == 0 {
            0.0
        } else {
            self.eig_comp.as_secs_f64() * 1e3 / self.eig_updates as f64
        }
    }

    /// Mean eig-communication time per eig update, in milliseconds.
    pub fn eig_comm_ms(&self) -> f64 {
        if self.eig_updates == 0 {
            0.0
        } else {
            self.eig_comm.as_secs_f64() * 1e3 / self.eig_updates as f64
        }
    }

    /// Merge another rank's stats (for group-wide reports).
    pub fn merge(&mut self, other: &StageStats) {
        self.factor_comp += other.factor_comp;
        self.factor_comm += other.factor_comm;
        self.eig_comp += other.eig_comp;
        self.eig_comm += other.eig_comm;
        self.precond += other.precond;
        self.factor_updates += other.factor_updates;
        self.eig_updates += other.eig_updates;
        self.steps += other.steps;
        self.stale_factor_steps += other.stale_factor_steps;
        self.eig_fallbacks += other.eig_fallbacks;
        self.ema_comp_folds += other.ema_comp_folds;
        self.ema_comp_mag = self.ema_comp_mag.max(other.ema_comp_mag);
        self.identity_preconds += other.identity_preconds;
        // Numerics probes are point-in-time, not additive: a group-wide
        // view keeps the worst conditioning/staleness and the most
        // recent scalar trajectory values.
        self.max_cond = self.max_cond.max(other.max_cond);
        self.staleness_age = self.staleness_age.max(other.staleness_age);
        self.eig_rank = self.eig_rank.max(other.eig_rank);
        // Group-wide capture is the *worst* rank's capture; 0 means "no
        // data", so only a reporting rank can lower it.
        if other.eig_captured_mass != 0.0 {
            self.eig_captured_mass = if self.eig_captured_mass == 0.0 {
                other.eig_captured_mass
            } else {
                self.eig_captured_mass.min(other.eig_captured_mass)
            };
        }
        if other.last_nu != 0.0 {
            self.last_nu = other.last_nu;
        }
        if other.precond_ratio != 0.0 {
            self.precond_ratio = other.precond_ratio;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_divide_by_update_counts() {
        let mut s = StageStats::new();
        s.factor_comp = Duration::from_millis(100);
        s.factor_updates = 4;
        s.eig_comp = Duration::from_millis(90);
        s.eig_updates = 3;
        assert!((s.factor_comp_ms() - 25.0).abs() < 1e-9);
        assert!((s.eig_comp_ms() - 30.0).abs() < 1e-9);
        // No division by zero.
        assert_eq!(StageStats::new().factor_comp_ms(), 0.0);
        assert_eq!(StageStats::new().eig_comm_ms(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = StageStats::new();
        a.steps = 2;
        a.factor_comm = Duration::from_millis(5);
        let mut b = StageStats::new();
        b.steps = 3;
        b.factor_comm = Duration::from_millis(7);
        a.merge(&b);
        assert_eq!(a.steps, 5);
        assert_eq!(a.factor_comm, Duration::from_millis(12));
    }
}
