//! K-FAC preconditioner configuration.
//!
//! Gathers every hyper-parameter §V-C introduces: damping γ and its decay
//! schedule, the KL-clip constant κ, the eigendecomposition update
//! interval (`kfac-update-freq`) and its decay schedule, the 10× factor
//! update multiplier, the running-average weight ξ, the inversion method
//! (Table I's comparison axis) and the distribution strategy
//! (K-FAC-lw vs K-FAC-opt, §VI-C3).

/// How `(F̂ + γI)⁻¹ ∇L` is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InversionMethod {
    /// Implicit inverse via the eigendecomposition expansion of
    /// Eq. 13–15 — the paper's choice (Table I shows it preserving
    /// accuracy at large batch).
    Eigen,
    /// Explicit inverse `(A+γI)⁻¹, (G+γI)⁻¹` of Eq. 11 — the variant
    /// Table I shows degrading as batch size grows.
    ExplicitInverse,
}

/// Which symmetric-eigendecomposition backend evaluates the factor
/// spectra (all satisfy the same wire contract; tridiagonal QL is the
/// faster LAPACK-style exact route for larger factors, Jacobi the
/// simpler and ultra-robust default, and the randomized backend trades
/// a controlled slice of spectral mass for several-fold speedups on
/// factors with decaying spectra).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EigenSolver {
    /// Cyclic Jacobi sweeps (`kfac_tensor::eigh`).
    Jacobi,
    /// Householder tridiagonalization + implicit-shift QL
    /// (`kfac_tensor::eigh_tridiag`).
    TridiagonalQl,
    /// Randomized truncated decomposition (`kfac_tensor::eigh_randomized`)
    /// with adaptive rank selection per [`RandEigPolicy`]; falls back to
    /// the exact QL path on small factors, poor spectral capture, or
    /// solver failure.
    Randomized,
}

impl EigenSolver {
    /// Stable name used in telemetry tags and env configuration.
    pub fn name(self) -> &'static str {
        match self {
            EigenSolver::Jacobi => "jacobi",
            EigenSolver::TridiagonalQl => "tridiag",
            EigenSolver::Randomized => "randomized",
        }
    }

    /// Parse the `KFAC_EIG_BACKEND` spelling (aliases accepted).
    pub fn parse(s: &str) -> Option<EigenSolver> {
        match s.trim().to_ascii_lowercase().as_str() {
            "jacobi" => Some(EigenSolver::Jacobi),
            "tridiag" | "ql" | "tridiagonal-ql" | "tridiagonal_ql" => {
                Some(EigenSolver::TridiagonalQl)
            }
            "randomized" | "rand" | "rsvd" => Some(EigenSolver::Randomized),
            _ => None,
        }
    }

    /// The `KFAC_EIG_BACKEND` env override, if set, as a typed result:
    /// `Ok(None)` when unset, `Err` with a clear message on an
    /// unparseable value — a typo in an env knob must not silently select
    /// a default, but it is the *caller's* decision whether to abort
    /// (binary startup) or surface the error (library/recovery paths),
    /// so the error is typed rather than a panic.
    pub fn from_env() -> Result<Option<EigenSolver>, ConfigError> {
        Self::from_env_spec(std::env::var("KFAC_EIG_BACKEND").ok().as_deref())
    }

    /// Pure parse of the `KFAC_EIG_BACKEND` override (testable without
    /// touching the process environment).
    pub fn from_env_spec(value: Option<&str>) -> Result<Option<EigenSolver>, ConfigError> {
        match value {
            None => Ok(None),
            Some(s) => EigenSolver::parse(s).map(Some).ok_or_else(|| ConfigError {
                knob: "KFAC_EIG_BACKEND",
                message: format!("{s:?} invalid; expected jacobi|tridiag|randomized"),
            }),
        }
    }
}

/// A malformed configuration knob (env override or programmatic value),
/// carrying which knob failed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The knob that failed to parse (e.g. `"KFAC_EIG_BACKEND"`).
    pub knob: &'static str,
    /// Human-readable description of the rejected value.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={}", self.knob, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Adaptive-rank policy for the [`EigenSolver::Randomized`] backend.
///
/// The preconditioner starts at a small sketch rank, measures the
/// captured spectral mass `Σλ_kept / trace`, and doubles the rank until
/// the capture reaches `mass_threshold`. If the cap
/// (`max_rank_frac · n`) is hit without reaching the threshold — a slow
/// spectrum where truncation would genuinely hurt — the factor is solved
/// exactly instead, so accuracy degrades toward the exact path, never
/// away from it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandEigPolicy {
    /// Factors below this dimension always use the exact QL path: at
    /// small `n` the sketch GEMMs cost more than the exact solve.
    pub min_dim: usize,
    /// Starting rank (also floored at `n/16`).
    pub init_rank: usize,
    /// Oversampling columns added to every sketch.
    pub oversample: usize,
    /// Subspace (power) iterations per sketch.
    pub power_iters: usize,
    /// Required captured spectral mass in `(0, 1]`.
    pub mass_threshold: f64,
    /// Rank cap as a fraction of `n`; past it the exact solver is both
    /// faster and better, so the policy falls back.
    pub max_rank_frac: f64,
    /// Deterministic sketch seed (identical on every rank and rerun).
    pub seed: u64,
}

impl Default for RandEigPolicy {
    fn default() -> Self {
        RandEigPolicy {
            min_dim: 96,
            init_rank: 16,
            oversample: 8,
            power_iters: 2,
            mass_threshold: 0.99,
            max_rank_frac: 0.5,
            seed: 0x7A11_EED5,
        }
    }
}

impl RandEigPolicy {
    /// Initial sketch rank for an `n×n` factor.
    pub fn initial_rank(&self, n: usize) -> usize {
        self.init_rank.max(n / 16).clamp(1, n.max(1))
    }

    /// Largest rank the adaptive loop will try for an `n×n` factor.
    pub fn max_rank(&self, n: usize) -> usize {
        ((n as f64 * self.max_rank_frac) as usize).clamp(1, n.max(1))
    }
}

/// How K-FAC work is distributed across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistStrategy {
    /// The paper's optimized scheme (K-FAC-opt): each *factor* is
    /// assigned to a rank; eigendecompositions are allgathered; every
    /// rank preconditions all layers locally. Decoupling eig updates
    /// from preconditioning lets non-update iterations skip all K-FAC
    /// communication (§IV-C).
    Opt,
    /// The layer-wise scheme of Osawa et al. \[6\] (K-FAC-lw): one rank
    /// owns a whole layer, computes both eigendecompositions *and* the
    /// preconditioned gradient, and communicates preconditioned
    /// gradients every iteration.
    Lw,
}

/// How factors are placed onto ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Greedy round-robin by factor index — the paper's implementation
    /// (§VI-C4 identifies the resulting size imbalance as the scaling
    /// bottleneck, Table VI).
    RoundRobin,
    /// Longest-processing-time-first using `dim³` as the eig-cost
    /// heuristic — the placement policy the paper proposes as future
    /// work in §VI-C4, implemented here as an extension.
    SizeBalanced,
}

/// Full preconditioner configuration.
#[derive(Debug, Clone)]
pub struct KfacConfig {
    /// Tikhonov damping γ added to the Kronecker eigenvalue products
    /// (paper default 0.001 for ImageNet, §VI-C1).
    pub damping: f32,
    /// KL-clip constant κ of Eq. 18 (order 1e-3); `None` disables
    /// gradient rescaling.
    pub kl_clip: Option<f32>,
    /// `kfac-update-freq`: iterations between eigendecomposition
    /// (or explicit-inverse) updates.
    pub update_freq: usize,
    /// Factors are recomputed and averaged this many times per eig
    /// update (paper: 10 — "a frequency of 10× kfac-update-freq").
    pub factor_freq_multiplier: usize,
    /// Running-average weight ξ of Eq. 16–17, typically in `[0.9, 1)`.
    pub running_avg: f32,
    /// Inversion method.
    pub inversion: InversionMethod,
    /// Eigendecomposition backend for the eigen path.
    pub eigen_solver: EigenSolver,
    /// Adaptive-rank policy used when `eigen_solver` is
    /// [`EigenSolver::Randomized`] (ignored otherwise).
    pub rand_eig: RandEigPolicy,
    /// Distribution strategy.
    pub strategy: DistStrategy,
    /// Placement policy for factor → rank assignment.
    pub placement: PlacementPolicy,
    /// Damping decay: at each listed epoch, γ is multiplied by
    /// `damping_decay_factor` (§V-C: "reduce the damping by a fixed
    /// scalar quantity at fixed epochs").
    pub damping_decay_epochs: Vec<usize>,
    /// Multiplier applied to γ at each decay epoch.
    pub damping_decay_factor: f32,
    /// Update-frequency decay: `(epoch, new_update_freq)` pairs applied
    /// in order (§V-C: "at fixed training epochs, we decrease
    /// kfac-update-freq").
    pub update_freq_schedule: Vec<(usize, usize)>,
    /// Exchange only the upper triangle of each (symmetric) factor in the
    /// fused allreduce, cutting factor traffic almost in half — an
    /// implementation of the paper's stated future work to "reduce
    /// communication quantity" (§VII).
    pub triangular_factor_comm: bool,
    /// Per-stage precision policy (storage and wire dtypes). The default
    /// — f32 everywhere — is bitwise identical to builds predating the
    /// mixed-precision substrate.
    pub precision: crate::precision::PrecisionPolicy,
}

impl Default for KfacConfig {
    fn default() -> Self {
        KfacConfig {
            damping: 0.001,
            kl_clip: Some(0.001),
            update_freq: 10,
            factor_freq_multiplier: 10,
            running_avg: 0.95,
            inversion: InversionMethod::Eigen,
            eigen_solver: EigenSolver::Jacobi,
            rand_eig: RandEigPolicy::default(),
            strategy: DistStrategy::Opt,
            placement: PlacementPolicy::RoundRobin,
            damping_decay_epochs: Vec::new(),
            damping_decay_factor: 0.5,
            update_freq_schedule: Vec::new(),
            triangular_factor_comm: true,
            precision: crate::precision::PrecisionPolicy::default(),
        }
    }
}

impl KfacConfig {
    /// Iterations between factor recomputations: `update_freq /
    /// factor_freq_multiplier`, at least 1.
    pub fn factor_interval(&self) -> usize {
        (self.update_freq / self.factor_freq_multiplier).max(1)
    }

    /// Damping after the decays scheduled at or before `epoch`.
    pub fn damping_at(&self, epoch: usize) -> f32 {
        let drops = self
            .damping_decay_epochs
            .iter()
            .filter(|&&e| epoch >= e)
            .count();
        self.damping * self.damping_decay_factor.powi(drops as i32)
    }

    /// Eig-update interval in force at `epoch`.
    pub fn update_freq_at(&self, epoch: usize) -> usize {
        let mut freq = self.update_freq;
        for &(e, f) in &self.update_freq_schedule {
            if epoch >= e {
                freq = f;
            }
        }
        freq
    }

    /// Validate invariants (call once at construction sites).
    pub fn validate(&self) {
        assert!(self.damping > 0.0, "damping must be positive");
        assert!(self.update_freq >= 1, "update_freq must be ≥ 1");
        assert!(
            self.factor_freq_multiplier >= 1,
            "factor_freq_multiplier must be ≥ 1"
        );
        assert!(
            (0.0..=1.0).contains(&self.running_avg),
            "running_avg must be in [0, 1]"
        );
        if let Some(k) = self.kl_clip {
            assert!(k > 0.0, "kl_clip must be positive when set");
        }
        assert!(
            self.rand_eig.mass_threshold > 0.0 && self.rand_eig.mass_threshold <= 1.0,
            "rand_eig.mass_threshold must be in (0, 1]"
        );
        assert!(
            self.rand_eig.max_rank_frac > 0.0 && self.rand_eig.max_rank_frac <= 1.0,
            "rand_eig.max_rank_frac must be in (0, 1]"
        );
        self.precision.validate().unwrap_or_else(|e| panic!("{e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_interval_is_tenth_of_update_freq() {
        let cfg = KfacConfig {
            update_freq: 100,
            ..KfacConfig::default()
        };
        assert_eq!(cfg.factor_interval(), 10);
        let tight = KfacConfig {
            update_freq: 5,
            ..KfacConfig::default()
        };
        assert_eq!(tight.factor_interval(), 1, "clamped at every iteration");
    }

    #[test]
    fn damping_decays_at_epochs() {
        let cfg = KfacConfig {
            damping: 0.01,
            damping_decay_epochs: vec![10, 20],
            damping_decay_factor: 0.5,
            ..KfacConfig::default()
        };
        assert_eq!(cfg.damping_at(0), 0.01);
        assert_eq!(cfg.damping_at(10), 0.005);
        assert_eq!(cfg.damping_at(25), 0.0025);
    }

    #[test]
    fn update_freq_schedule_applies_in_order() {
        let cfg = KfacConfig {
            update_freq: 10,
            update_freq_schedule: vec![(20, 50), (40, 100)],
            ..KfacConfig::default()
        };
        assert_eq!(cfg.update_freq_at(0), 10);
        assert_eq!(cfg.update_freq_at(20), 50);
        assert_eq!(cfg.update_freq_at(45), 100);
    }

    #[test]
    fn default_validates() {
        KfacConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "damping must be positive")]
    fn zero_damping_rejected() {
        KfacConfig {
            damping: 0.0,
            ..KfacConfig::default()
        }
        .validate();
    }

    #[test]
    fn eigen_solver_names_round_trip() {
        for s in [
            EigenSolver::Jacobi,
            EigenSolver::TridiagonalQl,
            EigenSolver::Randomized,
        ] {
            assert_eq!(EigenSolver::parse(s.name()), Some(s));
        }
        assert_eq!(EigenSolver::parse("ql"), Some(EigenSolver::TridiagonalQl));
        assert_eq!(EigenSolver::parse("rsvd"), Some(EigenSolver::Randomized));
        assert_eq!(EigenSolver::parse("lapack"), None);
    }

    #[test]
    #[should_panic(expected = "rand_eig.mass_threshold")]
    fn zero_mass_threshold_rejected() {
        KfacConfig {
            rand_eig: RandEigPolicy {
                mass_threshold: 0.0,
                ..RandEigPolicy::default()
            },
            ..KfacConfig::default()
        }
        .validate();
    }

    #[test]
    fn rand_eig_rank_schedule_is_clamped() {
        let p = RandEigPolicy::default();
        assert_eq!(p.initial_rank(8), 8, "clamped to n");
        assert_eq!(p.initial_rank(512), 32, "n/16 floor dominates at 512");
        assert_eq!(p.max_rank(512), 256);
        assert_eq!(p.max_rank(1), 1);
    }
}
