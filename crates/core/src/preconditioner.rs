//! The distributed K-FAC preconditioner — Algorithm 1 of the paper.
//!
//! One [`Kfac`] instance lives on each rank. Per training iteration (after
//! gradients have been allreduced, mirroring `optimizer.synchronize()` in
//! Listing 1) the rank calls [`Kfac::step`], which:
//!
//! 1. **Factor update** (every `update_freq / 10` iterations): computes
//!    local Kronecker factors from the captured activations/gradients,
//!    folds them into running averages (Eq. 16–17) and allreduces the
//!    averages (Algorithm 1 lines 4–8).
//! 2. **Second-order update** (every `update_freq` iterations): assigns
//!    each factor to a rank (round-robin, Fig. 3 step 2), eigendecomposes
//!    (or explicitly inverts) the locally-assigned factors, and
//!    allgathers the results (lines 10–18).
//! 3. **Preconditioning** (every iteration): computes
//!    `(F̂ + γI)⁻¹ ∇L` locally for all layers (Eq. 13–15), applies the
//!    KL-clip ν (Eq. 18), and writes the result back into the layers'
//!    gradients, ready for any first-order optimizer (lines 19–21).
//!
//! Between second-order updates, stale eigendecompositions are reused and
//! **no K-FAC communication happens at all** — the decoupling that §IV-C
//! credits for K-FAC-opt's scaling advantage. The K-FAC-lw strategy of
//! Osawa et al. \[6\] is implemented alongside for the Fig. 7–9 comparison:
//! there, a layer's owner computes both decompositions *and* the
//! preconditioned gradient, which is then exchanged every iteration.
//!
//! ## Graceful degradation
//!
//! The same staleness that powers the decoupling is the natural fault
//! response: if a factor allreduce times out the iteration simply reuses
//! the previous averages ([`Kfac::factor_unpack_checked`] /
//! [`Kfac::note_stale_factor`]); if an eigendecomposition fails to
//! converge or a gathered payload is corrupted, the factor falls back to
//! a damped-identity preconditioner (gradient scaled by `1/(1+γ)` —
//! plain SGD for that layer) rather than poisoning the update. The
//! staged [`Kfac::eig_compute_payload`] / [`Kfac::eig_apply_all`] pair
//! keeps second-order state untouched until the allgather has succeeded,
//! so a failed exchange leaves every rank identically stale. All
//! degradations are counted (`kfac/stale_factor_steps`,
//! `kfac/eig_fallbacks`, `kfac/identity_preconds`) and surfaced through
//! [`Kfac::stats`]. [`Kfac::save_state`] / [`Kfac::restore_state`]
//! round-trip the full optimizer state for checkpoint-based rank-loss
//! recovery.

use crate::config::{DistStrategy, EigenSolver, InversionMethod, KfacConfig};
use crate::distribution::{assign_factors, assign_layers_lw, factor_descs, FactorDesc};
use crate::math::{
    decompose_factor_randomized, decompose_factor_with, invert_factor, kl_clip_nu,
    precondition_eigen, precondition_inverse, EigenPair, InversePair,
};
use crate::stats::StageStats;
use kfac_collectives::{Communicator, ReduceOp, TrafficClass};
use kfac_nn::{KfacEligible, Layer};
use kfac_telemetry::{Registry, Span};
use kfac_tensor::half::{bf16_to_f32, f32_to_bf16, round_bf16_in_place};
use kfac_tensor::{arena, Dtype, EigenDecomposition, Matrix};

/// Per-factor second-order state.
enum FactorSecondOrder {
    None,
    Eigen(EigenDecomposition),
    Inverse(Matrix),
}

/// One compensated EMA fold (Eq. 16–17 with bf16 storage): the running
/// value is tracked exactly in f64 as `stored + residual`, the fold
/// happens at f64, and only the *storage* is rounded to bf16 — so the
/// long-run average carries no rounding drift, while everything
/// downstream (allreduce, eig) sees a genuine bf16-width factor.
/// Returns the largest |residual| after the fold (the drift an
/// uncompensated bf16 EMA would have kept).
fn fold_compensated(stored: &mut Matrix, residual: &mut Vec<f64>, new: &Matrix, xi: f64) -> f64 {
    if residual.is_empty() {
        // First compensated fold after a restore (residuals are not
        // checkpointed) or after a policy change: start from zero.
        residual.resize(stored.len(), 0.0);
    }
    debug_assert_eq!(residual.len(), stored.len());
    let mut max_mag = 0.0f64;
    for ((s, r), &n) in stored
        .as_mut_slice()
        .iter_mut()
        .zip(residual.iter_mut())
        .zip(new.as_slice())
    {
        let exact = xi * (*s as f64 + *r) + (1.0 - xi) * n as f64;
        let rounded = bf16_to_f32(f32_to_bf16(exact as f32));
        *r = exact - rounded as f64;
        *s = rounded;
        max_mag = max_mag.max(r.abs());
    }
    max_mag
}

/// Distributed K-FAC gradient preconditioner (one instance per rank).
pub struct Kfac {
    cfg: KfacConfig,
    /// `(dim_A, dim_G)` per K-FAC-eligible layer, in structural order.
    layer_dims: Vec<(usize, usize)>,
    factors: Vec<FactorDesc>,
    /// Running-average factors, indexed by factor id. With
    /// `precision.factor_ema == Bf16` every element is kept bf16-rounded
    /// (still materialized as f32) and the rounding remainder lives in
    /// `ema_residual`.
    averages: Vec<Option<Matrix>>,
    /// f64 Kahan-style residuals of the compensated factor EMA, indexed
    /// by factor id; empty vectors until the bf16 EMA path first touches
    /// a factor. Never serialized — a restored instance restarts the
    /// compensation from zero (documented in [`Kfac::restore_state`]).
    ema_residual: Vec<Vec<f64>>,
    /// Second-order state (eig or inverse), indexed by factor id.
    second_order: Vec<FactorSecondOrder>,
    iteration: u64,
    epoch: usize,
    damping: f32,
    update_freq: usize,
    /// Ambient telemetry captured at construction (registry + the rank
    /// this instance records as). All stage timing lives there; `None`
    /// when the constructing thread had no recorder installed, in which
    /// case [`Kfac::stats`] reports zero durations but correct counts.
    telemetry: Option<(Registry, usize)>,
    factor_updates: u64,
    eig_updates: u64,
    /// Compensated-EMA folds performed (one per factor per bf16-EMA
    /// factor update; 0 on the f32 path).
    ema_comp_folds: u64,
    /// Largest |residual| the compensated EMA has carried so far — the
    /// drift the f32 path would silently have accumulated.
    ema_comp_mag: f64,
    /// Iterations that reused stale factor averages because the factor
    /// allreduce failed or returned a corrupted payload.
    stale_factor_steps: u64,
    /// Factors that fell back to the damped-identity second-order state
    /// (eigendecomposition failure or corrupted gathered payload).
    eig_fallbacks: u64,
    /// Layers preconditioned with the implicit identity because no
    /// second-order state was available yet (atomic: counted from the
    /// read-only preconditioning path).
    identity_preconds: std::sync::atomic::AtomicU64,
    /// Iteration of the last completed second-order update; feeds the
    /// `kfac/staleness_age` probe (a read-only observability value —
    /// never an input to the update math).
    last_eig_iter: u64,
    /// Worst condition number in the second-order pass currently being
    /// computed (running max across this rank's factors).
    pending_max_cond: f64,
    /// Worst condition number of the most recent completed pass.
    max_cond: f64,
    /// Largest retained eigenbasis rank in the pass being computed
    /// (running max across this rank's factors).
    pending_max_rank: u64,
    /// Largest retained rank of the most recent completed pass.
    eig_rank: u64,
    /// Smallest captured spectral mass in the pass being computed
    /// (running min across this rank's factors; +∞ = none yet).
    pending_min_mass: f64,
    /// Smallest captured spectral mass of the most recent completed pass.
    eig_captured_mass: f64,
    /// f64 bits of the last KL-clip ν (atomic: recorded from the
    /// `&self` apply path).
    last_nu_bits: std::sync::atomic::AtomicU64,
    /// f64 bits of the last ‖preconditioned‖/‖raw‖ gradient norm ratio.
    precond_ratio_bits: std::sync::atomic::AtomicU64,
}

impl Kfac {
    /// Build a preconditioner for `model`. Every rank must construct it
    /// from an identically-shaped model.
    pub fn new(model: &mut dyn Layer, cfg: KfacConfig) -> Self {
        cfg.validate();
        let mut layers = Vec::new();
        model.collect_kfac(&mut layers);
        assert!(
            !layers.is_empty(),
            "model has no K-FAC-eligible (Linear/Conv2d) layers"
        );
        let layer_dims: Vec<(usize, usize)> = layers.iter().map(|l| l.factor_dims()).collect();
        let factors = factor_descs(&layer_dims);
        let n_factors = factors.len();
        let damping = cfg.damping;
        let update_freq = cfg.update_freq;
        Kfac {
            cfg,
            layer_dims,
            factors,
            averages: vec![None; n_factors],
            ema_residual: vec![Vec::new(); n_factors],
            second_order: (0..n_factors).map(|_| FactorSecondOrder::None).collect(),
            iteration: 0,
            epoch: 0,
            damping,
            update_freq,
            telemetry: kfac_telemetry::current(),
            factor_updates: 0,
            eig_updates: 0,
            ema_comp_folds: 0,
            ema_comp_mag: 0.0,
            stale_factor_steps: 0,
            eig_fallbacks: 0,
            identity_preconds: std::sync::atomic::AtomicU64::new(0),
            last_eig_iter: 0,
            pending_max_cond: 0.0,
            max_cond: 0.0,
            pending_max_rank: 0,
            eig_rank: 0,
            pending_min_mass: f64::INFINITY,
            eig_captured_mass: 0.0,
            last_nu_bits: std::sync::atomic::AtomicU64::new(0f64.to_bits()),
            precond_ratio_bits: std::sync::atomic::AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Number of K-FAC-eligible layers.
    pub fn num_layers(&self) -> usize {
        self.layer_dims.len()
    }

    /// The per-stage precision policy this instance runs under (for the
    /// harness's overlap comm tasks and telemetry labels).
    pub fn precision(&self) -> crate::precision::PrecisionPolicy {
        self.cfg.precision
    }

    /// The factor inventory (for placement analysis / Table VI).
    pub fn factors(&self) -> &[FactorDesc] {
        &self.factors
    }

    /// Stage timing accumulated on this rank, as a view over the
    /// telemetry registry: each duration is the summed time of the
    /// matching `kfac/*` spans this rank recorded, so this is exactly
    /// consistent with what the trace exporters see — there is no
    /// second bookkeeping path. Counts are algorithmic state and are
    /// correct even without an installed recorder.
    pub fn stats(&self) -> StageStats {
        let mut stats = StageStats::new();
        stats.factor_updates = self.factor_updates;
        stats.eig_updates = self.eig_updates;
        stats.steps = self.iteration;
        stats.stale_factor_steps = self.stale_factor_steps;
        stats.eig_fallbacks = self.eig_fallbacks;
        stats.ema_comp_folds = self.ema_comp_folds;
        stats.ema_comp_mag = self.ema_comp_mag;
        stats.identity_preconds = self
            .identity_preconds
            .load(std::sync::atomic::Ordering::Relaxed);
        stats.max_cond = self.max_cond;
        stats.eig_rank = self.eig_rank;
        stats.eig_captured_mass = self.eig_captured_mass;
        stats.last_nu =
            f64::from_bits(self.last_nu_bits.load(std::sync::atomic::Ordering::Relaxed));
        stats.precond_ratio = f64::from_bits(
            self.precond_ratio_bits
                .load(std::sync::atomic::Ordering::Relaxed),
        );
        stats.staleness_age = self.iteration.saturating_sub(self.last_eig_iter);
        if let Some((registry, rank)) = &self.telemetry {
            // Spans publish in batches; push this thread's tail so the
            // view is exact at the moment of the snapshot.
            kfac_telemetry::flush();
            let rank = Some(*rank);
            stats.factor_comp = registry.span_agg("kfac/factor_comp", rank).total;
            stats.factor_comm = registry.span_agg("kfac/factor_comm", rank).total;
            stats.eig_comp = registry.span_agg("kfac/eig_comp", rank).total;
            stats.eig_comm = registry.span_agg("kfac/eig_comm", rank).total;
            stats.precond = registry.span_agg("kfac/precond", rank).total;
        }
        stats
    }

    /// Current damping γ (after decays).
    pub fn damping(&self) -> f32 {
        self.damping
    }

    /// Current eigendecomposition update interval (after decays).
    pub fn update_freq(&self) -> usize {
        self.update_freq
    }

    /// Iterations between factor updates.
    pub fn factor_interval(&self) -> usize {
        (self.update_freq / self.cfg.factor_freq_multiplier).max(1)
    }

    /// Inform the preconditioner of the current epoch; applies the
    /// damping-decay and update-frequency-decay schedules of §V-C.
    pub fn set_epoch(&mut self, epoch: usize) {
        self.epoch = epoch;
        self.damping = self.cfg.damping_at(epoch);
        self.update_freq = self.cfg.update_freq_at(epoch);
        if let Some((registry, _)) = &self.telemetry {
            registry.gauge("kfac/damping").set(self.damping as f64);
            registry
                .gauge("kfac/update_freq")
                .set(self.update_freq as f64);
        }
    }

    /// Whether the *next* [`Kfac::step`] will recompute factors — the
    /// trainer enables activation/gradient capture on the model exactly
    /// for these iterations, so ordinary iterations pay no capture cost.
    pub fn needs_capture(&self) -> bool {
        self.is_factor_iteration()
    }

    /// Whether the current iteration recomputes Kronecker factors
    /// (Algorithm 1 lines 4–8 run this step).
    pub fn is_factor_iteration(&self) -> bool {
        self.iteration.is_multiple_of(self.factor_interval() as u64)
    }

    /// Whether the current iteration recomputes eigendecompositions
    /// (Algorithm 1 lines 9–18 run this step).
    pub fn is_eig_iteration(&self) -> bool {
        self.iteration.is_multiple_of(self.update_freq as u64)
    }

    /// Zero-based index of the current iteration (increments on
    /// [`Kfac::advance`], which [`Kfac::step`] calls last).
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Finish the current iteration. [`Kfac::step`] calls this
    /// internally; phase-level drivers (the overlapped execution graph)
    /// call it once after their last phase.
    pub fn advance(&mut self) {
        self.iteration += 1;
    }

    /// Run one preconditioning step (Algorithm 1). Call after the
    /// gradient allreduce and before `optimizer.step()`, exactly like
    /// `preconditioner.step()` in Listing 1.
    pub fn step(&mut self, model: &mut dyn Layer, comm: &dyn Communicator, lr: f32) {
        let mut layers = Vec::new();
        model.collect_kfac(&mut layers);
        assert_eq!(
            layers.len(),
            self.layer_dims.len(),
            "model structure changed since Kfac::new"
        );

        if self.is_factor_iteration() {
            self.update_factors(&layers, comm);
        }
        let eig_update = self.is_eig_iteration();
        match self.cfg.strategy {
            DistStrategy::Opt => {
                if eig_update {
                    self.update_second_order_opt(comm);
                }
                self.precondition_opt(&mut layers, lr);
            }
            DistStrategy::Lw => {
                if eig_update {
                    self.update_second_order_lw(comm);
                }
                self.precondition_lw(&mut layers, comm, lr);
            }
        }
        self.advance();
    }

    /// Algorithm 1 lines 4–8: local factor computation, running-average
    /// update, fused allreduce. Composed from the phase methods below so
    /// the sequential and overlapped paths share identical numerics.
    fn update_factors(&mut self, layers: &[&mut dyn KfacEligible], comm: &dyn Communicator) {
        let comp_span = Span::enter("kfac/factor_comp")
            .with("iter", self.iteration)
            .with("layers", layers.len());
        for (li, layer) in layers.iter().enumerate() {
            self.factor_update_layer(li, &**layer);
        }
        drop(comp_span);

        let _comm_span = Span::enter("kfac/factor_comm").with("iter", self.iteration);
        if comm.size() > 1 {
            let mut fused = self.factor_pack();
            // Route through the wire codec: `factor_wire == F32` is the
            // communicator's own allreduce (bitwise unchanged), half
            // widths halve the payload. The infallible contract of this
            // phase is preserved by panicking on codec errors, exactly
            // as `allreduce_tagged` itself panics on fabric faults.
            kfac_collectives::wire::try_allreduce_half(
                comm,
                &mut fused,
                ReduceOp::Average,
                TrafficClass::Factor,
                self.cfg.precision.factor_wire,
            )
            .expect("factor allreduce");
            self.factor_unpack(&fused);
        }
        self.note_factor_update();
    }

    /// Phase: compute K-FAC-eligible layer `li`'s Kronecker factors from
    /// its capture and fold them into the running averages (Eq. 16–17).
    /// Layers are independent, so calls may run in any order / in
    /// parallel across `li`.
    pub fn factor_update_layer(&mut self, li: usize, layer: &dyn KfacEligible) {
        assert!(
            layer.has_capture(),
            "factor update at iteration {} but layer {} ({}) has no capture; \
             enable capture when needs_capture() is true",
            self.iteration,
            li,
            layer.kfac_name()
        );
        let (a, g) = layer.compute_factors();
        let xi = self.cfg.running_avg;
        let compensated = self.cfg.precision.factor_ema == Dtype::Bf16;
        for (id, mut new) in [(2 * li, a), (2 * li + 1, g)] {
            match &mut self.averages[id] {
                Some(avg) => {
                    if compensated {
                        self.ema_comp_folds += 1;
                        let mag =
                            fold_compensated(avg, &mut self.ema_residual[id], &new, xi as f64);
                        self.ema_comp_mag = self.ema_comp_mag.max(mag);
                        if let Some((registry, _)) = &self.telemetry {
                            registry.histogram("train/ema_compensation_mag").record(mag);
                        }
                    } else {
                        // The legacy f32 fold — the f32-everywhere
                        // policy's bitwise-pinned path.
                        avg.axpby(xi, &new, 1.0 - xi);
                    }
                    // `new` came from the layer's arena scratch; return it
                    // so steady-state factor updates allocate nothing.
                    arena::recycle_matrix(new);
                }
                slot @ None => {
                    if compensated {
                        // Seed the stored average at bf16 and bank the
                        // rounding remainder so the very first fold is
                        // already drift-free.
                        let residual = &mut self.ema_residual[id];
                        residual.clear();
                        residual.reserve(new.len());
                        for v in new.as_mut_slice() {
                            let stored = bf16_to_f32(f32_to_bf16(*v));
                            residual.push(*v as f64 - stored as f64);
                            *v = stored;
                        }
                    }
                    *slot = Some(new);
                }
            }
        }
    }

    /// Phase: pack every running-average factor into one fused payload
    /// for a single allreduce (the fusion-buffer rationale of §II-D;
    /// factors are small and numerous). With `triangular_factor_comm`
    /// only the upper triangle travels: factors are symmetric, so this
    /// halves the payload exactly.
    pub fn factor_pack(&self) -> Vec<f32> {
        let triangular = self.cfg.triangular_factor_comm;
        let mut fused = Vec::new();
        for avg in self.averages.iter().flatten() {
            if triangular {
                let n = avg.rows();
                for i in 0..n {
                    fused.extend_from_slice(&avg.row(i)[i..]);
                }
            } else {
                fused.extend_from_slice(avg.as_slice());
            }
        }
        fused
    }

    /// Phase: write an allreduced fused payload (from
    /// [`Kfac::factor_pack`]) back into the running averages, mirroring
    /// the lower triangle when triangular packing is on.
    pub fn factor_unpack(&mut self, fused: &[f32]) {
        let triangular = self.cfg.triangular_factor_comm;
        let mut off = 0;
        for avg in self.averages.iter_mut().flatten() {
            if triangular {
                let n = avg.rows();
                for i in 0..n {
                    let len = n - i;
                    avg.row_mut(i)[i..].copy_from_slice(&fused[off..off + len]);
                    off += len;
                }
                // Mirror onto the lower triangle.
                for i in 0..n {
                    for j in (i + 1)..n {
                        let v = avg[(i, j)];
                        avg[(j, i)] = v;
                    }
                }
            } else {
                let len = avg.len();
                avg.as_mut_slice().copy_from_slice(&fused[off..off + len]);
                off += len;
            }
        }
        if self.cfg.precision.factor_ema == Dtype::Bf16 {
            // The allreduce averaged bf16-stored values at f32, so the
            // installed elements are no longer bf16-representable.
            // Re-round the storage and re-bank the remainders so the
            // stored+residual invariant holds across the exchange —
            // deterministically, since every rank unpacks identical
            // fused payloads.
            for (id, avg) in self.averages.iter_mut().enumerate() {
                let Some(avg) = avg else { continue };
                let residual = &mut self.ema_residual[id];
                if residual.is_empty() {
                    residual.resize(avg.len(), 0.0);
                }
                for (s, r) in avg.as_mut_slice().iter_mut().zip(residual.iter_mut()) {
                    let exact = *s as f64 + *r;
                    let rounded = bf16_to_f32(f32_to_bf16(exact as f32));
                    *r = exact - rounded as f64;
                    *s = rounded;
                }
            }
        }
    }

    /// Phase: record that a factor update completed (statistics only).
    pub fn note_factor_update(&mut self) {
        self.factor_updates += 1;
    }

    /// Validated variant of [`Kfac::factor_unpack`]: installs the
    /// allreduced payload only if every element is finite and sane.
    /// Returns `false` — leaving the running averages untouched (stale
    /// but self-consistent) and counting a stale step — when the payload
    /// was corrupted in flight.
    pub fn factor_unpack_checked(&mut self, fused: &[f32]) -> bool {
        // Bit-flip corruption in the exponent shows up as non-finite or
        // absurdly large magnitudes; factor entries are batch-averaged
        // second moments and never legitimately reach 1e30.
        if fused.iter().all(|v| v.is_finite() && v.abs() < 1e30) {
            self.factor_unpack(fused);
            true
        } else {
            self.note_stale_factor();
            false
        }
    }

    /// Record that this iteration kept its previous factor averages
    /// because the factor exchange failed (timeout, rank trouble, or a
    /// corrupted payload). Reusing stale factors is the same mechanism
    /// as the decoupled update schedule — just triggered by a fault
    /// instead of the interval.
    pub fn note_stale_factor(&mut self) {
        self.stale_factor_steps += 1;
        if let Some((registry, _)) = &self.telemetry {
            registry.counter("kfac/stale_factor_steps").inc();
        }
    }

    /// The damped-identity second-order state for factor `id`: the
    /// wire-compatible stand-in used when a decomposition fails or a
    /// gathered payload is corrupted. An identity eigenbasis with unit
    /// eigenvalues preconditions the layer with `1/(1+γ)` — plain
    /// (damped) SGD — instead of poisoning the update.
    fn identity_second_order(&self, id: usize) -> FactorSecondOrder {
        let n = self.factors[id].dim;
        match self.cfg.inversion {
            InversionMethod::Eigen => FactorSecondOrder::Eigen(EigenDecomposition {
                eigenvalues: vec![1.0; n],
                eigenvectors: Matrix::identity(n),
            }),
            InversionMethod::ExplicitInverse => {
                let mut m = Matrix::identity(n);
                m.scale(1.0 / (1.0 + self.damping));
                FactorSecondOrder::Inverse(m)
            }
        }
    }

    /// Record one damped-identity fallback (statistics + telemetry).
    fn note_eig_fallback(&mut self) {
        self.eig_fallbacks += 1;
        if let Some((registry, _)) = &self.telemetry {
            registry.counter("kfac/eig_fallbacks").inc();
        }
    }

    /// Compute the second-order representation (eig or inverse) of one
    /// factor from its running average. A failed or non-finite
    /// decomposition degrades to the damped identity instead of
    /// panicking; the fallback is counted in `kfac/eig_fallbacks`.
    fn compute_second_order(&mut self, id: usize) -> FactorSecondOrder {
        let so = match self.cfg.inversion {
            InversionMethod::Eigen => {
                let (eig, trace) = {
                    let avg = self.averages[id]
                        .as_ref()
                        .expect("factor average exists before second-order update");
                    // Eig-input rounding: idempotent when the EMA already
                    // stores bf16; a real narrowing when only `eig` is
                    // reduced.
                    let rounded;
                    let avg = if self.cfg.precision.eig == Dtype::Bf16 {
                        let mut m = avg.clone();
                        round_bf16_in_place(m.as_mut_slice());
                        rounded = m;
                        &rounded
                    } else {
                        avg
                    };
                    let trace = avg.trace() as f64;
                    let eig = match self.cfg.eigen_solver {
                        EigenSolver::Randomized => {
                            decompose_factor_randomized(avg, &self.cfg.rand_eig)
                        }
                        solver => decompose_factor_with(avg, solver),
                    }
                    .ok()
                    .filter(|e| {
                        e.eigenvalues.iter().all(|v| v.is_finite())
                            && e.eigenvectors.as_slice().iter().all(|v| v.is_finite())
                    });
                    (eig, trace)
                };
                if let Some(e) = &eig {
                    self.record_spectrum(id, e, trace);
                }
                eig.map(FactorSecondOrder::Eigen)
            }
            InversionMethod::ExplicitInverse => {
                let avg = self.averages[id]
                    .as_ref()
                    .expect("factor average exists before second-order update");
                invert_factor(avg, self.damping)
                    .ok()
                    .filter(|m| m.as_slice().iter().all(|v| v.is_finite()))
                    .map(FactorSecondOrder::Inverse)
            }
        };
        match so {
            Some(so) => so,
            None => {
                self.note_eig_fallback();
                self.identity_second_order(id)
            }
        }
    }

    /// Probe: per-factor eigen-spectrum summary — λ_min, λ_max,
    /// condition number, retained eigenbasis rank and captured spectral
    /// mass (Σλ_kept / tr F, where `trace` is the factor average's
    /// trace) as per-layer gauges plus run-wide histograms. Pure
    /// observability: values are *read* from the decomposition and
    /// never feed back into the update, and nothing at all is computed
    /// when no telemetry recorder was installed at construction.
    fn record_spectrum(&mut self, id: usize, eig: &kfac_tensor::EigenDecomposition, trace: f64) {
        if self.telemetry.is_none() {
            return;
        }
        let n = eig.eigenvalues.len();
        // λ_min over the *kept* modes: a randomized-truncated
        // decomposition pads discarded leading modes with exact zeros,
        // which are layout artifacts, not spectrum.
        let rank = eig.truncated_rank().unwrap_or(n);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut captured = 0.0f64;
        for &v in &eig.eigenvalues[n - rank..] {
            lo = lo.min(v as f64);
            hi = hi.max(v as f64);
            captured += (v as f64).max(0.0);
        }
        if !lo.is_finite() || !hi.is_finite() {
            return;
        }
        let mass = if trace > 0.0 {
            (captured / trace).min(1.0)
        } else {
            1.0
        };
        // Factors are PSD; clamp λ_min away from zero so the condition
        // number stays finite for rank-deficient factors.
        let cond = hi / lo.max(1e-12);
        self.pending_max_cond = self.pending_max_cond.max(cond);
        self.pending_max_rank = self.pending_max_rank.max(rank as u64);
        self.pending_min_mass = self.pending_min_mass.min(mass);
        let (registry, _) = self.telemetry.as_ref().expect("checked above");
        let li = id / 2;
        let kind = if id.is_multiple_of(2) { "a" } else { "g" };
        registry
            .gauge(&format!("kfac/layer{li}/{kind}_lambda_min"))
            .set(lo);
        registry
            .gauge(&format!("kfac/layer{li}/{kind}_lambda_max"))
            .set(hi);
        registry
            .gauge(&format!("kfac/layer{li}/{kind}_cond"))
            .set(cond);
        registry
            .gauge(&format!("kfac/layer{li}/{kind}_eig_rank"))
            .set(rank as f64);
        registry
            .gauge(&format!("kfac/layer{li}/{kind}_eig_mass"))
            .set(mass);
        registry.histogram("kfac/lambda_min").record(lo);
        registry.histogram("kfac/lambda_max").record(hi);
        registry.histogram("kfac/cond").record(cond);
        registry.histogram("kfac/eig_rank").record(rank as f64);
        registry.histogram("kfac/eig_mass").record(mass);
    }

    /// Wire length (f32 words) of one factor's second-order payload.
    fn wire_len(&self, id: usize) -> usize {
        let n = self.factors[id].dim;
        match self.cfg.inversion {
            InversionMethod::Eigen => EigenDecomposition::wire_len(n),
            InversionMethod::ExplicitInverse => n * n,
        }
    }

    fn encode_second_order(&self, so: &FactorSecondOrder, out: &mut Vec<f32>) {
        match so {
            FactorSecondOrder::Eigen(e) => out.extend_from_slice(&e.to_bytes_f32()),
            FactorSecondOrder::Inverse(m) => out.extend_from_slice(m.as_slice()),
            FactorSecondOrder::None => unreachable!("encoding empty second-order state"),
        }
    }

    /// Decode one factor's wire payload. A payload carrying non-finite
    /// values (silent corruption in flight) degrades to the damped
    /// identity rather than installing poison into the preconditioner.
    fn decode_second_order(&mut self, id: usize, data: &[f32]) -> FactorSecondOrder {
        if !data.iter().all(|v| v.is_finite()) {
            self.note_eig_fallback();
            return self.identity_second_order(id);
        }
        let n = self.factors[id].dim;
        match self.cfg.inversion {
            InversionMethod::Eigen => {
                FactorSecondOrder::Eigen(EigenDecomposition::from_bytes_f32(n, data))
            }
            InversionMethod::ExplicitInverse => {
                FactorSecondOrder::Inverse(Matrix::from_vec(n, n, data.to_vec()))
            }
        }
    }

    /// Algorithm 1 lines 9–18 (K-FAC-opt): round-robin factor assignment,
    /// local decompositions, allgather. Composed from the phase methods
    /// below so the sequential and overlapped paths share identical
    /// numerics.
    fn update_second_order_opt(&mut self, comm: &dyn Communicator) {
        let world = comm.size();
        let rank = comm.rank();
        let assignment = self.eig_assignment(world);

        let owned = assignment.iter().filter(|&&o| o == rank).count();
        let comp_span = Span::enter("kfac/eig_comp")
            .with("iter", self.iteration)
            .with("factors", owned);
        let mine: Vec<usize> = (0..self.factors.len())
            .filter(|&id| assignment[id] == rank)
            .collect();
        for id in mine {
            self.eig_compute_one(id);
        }
        drop(comp_span);

        let _comm_span = Span::enter("kfac/eig_comm").with("iter", self.iteration);
        if world > 1 {
            let payload = self.eig_local_payload(&assignment, rank);
            let gathered = kfac_collectives::wire::try_allgather_half(
                comm,
                &payload,
                TrafficClass::Eigen,
                self.cfg.precision.factor_wire,
            )
            .expect("eigen allgather");
            self.eig_apply_gathered(&assignment, rank, &gathered);
        }
        self.note_eig_update();
    }

    /// Phase: the factor→rank ownership map for a `world`-rank group
    /// (round-robin / cost-balanced per the placement policy, Fig. 3
    /// step 2). Deterministic: every rank computes the same map.
    pub fn eig_assignment(&self, world: usize) -> Vec<usize> {
        assign_factors(self.cfg.placement, &self.factors, world)
    }

    /// Phase: eigendecompose (or invert) factor `id` from its running
    /// average and store the result locally. Factors are independent, so
    /// calls may run in any order across `id`.
    pub fn eig_compute_one(&mut self, id: usize) {
        self.second_order[id] = self.compute_second_order(id);
    }

    /// Phase: serialize this rank's owned second-order results (factor
    /// id order) into the allgather payload of Algorithm 1 line 18.
    pub fn eig_local_payload(&self, assignment: &[usize], rank: usize) -> Vec<f32> {
        let mut payload = Vec::new();
        for f in &self.factors {
            if assignment[f.id] == rank {
                self.encode_second_order(&self.second_order[f.id], &mut payload);
            }
        }
        payload
    }

    /// Phase: decode every other rank's allgathered payload into local
    /// second-order state. Walks factors in id order, consuming each
    /// owner's payload sequentially (the deterministic-assignment
    /// property makes the framing implicit).
    // Index loop: `decode_second_order` needs `&mut self`, which rules
    // out iterating `self.factors` directly.
    #[allow(clippy::needless_range_loop)]
    pub fn eig_apply_gathered(&mut self, assignment: &[usize], rank: usize, gathered: &[Vec<f32>]) {
        let mut offsets = vec![0usize; gathered.len()];
        for fid in 0..self.factors.len() {
            let owner = assignment[fid];
            let len = self.wire_len(fid);
            let start = offsets[owner];
            offsets[owner] += len;
            if owner == rank {
                continue; // already stored locally
            }
            let data = &gathered[owner][start..start + len];
            self.second_order[fid] = self.decode_second_order(fid, data);
        }
    }

    /// Phase: record that a second-order update completed (statistics
    /// only). Also rolls the spectrum probe over: the running max
    /// condition number of the pass that just finished becomes the
    /// reported `max_cond`, and factor staleness resets to zero.
    pub fn note_eig_update(&mut self) {
        self.eig_updates += 1;
        self.last_eig_iter = self.iteration;
        if self.pending_max_cond > 0.0 {
            self.max_cond = self.pending_max_cond;
            self.pending_max_cond = 0.0;
        }
        if self.pending_max_rank > 0 {
            self.eig_rank = self.pending_max_rank;
            self.pending_max_rank = 0;
        }
        if self.pending_min_mass.is_finite() {
            self.eig_captured_mass = self.pending_min_mass;
            self.pending_min_mass = f64::INFINITY;
        }
        if let Some((registry, _)) = &self.telemetry {
            registry.gauge("kfac/max_cond").set(self.max_cond);
            registry
                .gauge("kfac/max_eig_rank")
                .set(self.eig_rank as f64);
            registry
                .gauge("kfac/min_eig_mass")
                .set(self.eig_captured_mass);
        }
    }

    /// Staged second-order update, step 1: compute this rank's owned
    /// decompositions and serialize them — **without storing anything**.
    /// Paired with [`Kfac::eig_apply_all`], which installs every rank's
    /// results (including this rank's own, decoded from its payload)
    /// only after the allgather has succeeded. If the exchange fails,
    /// no rank has mutated `second_order`, so the whole group stays
    /// identically stale — the property the resilient trainer needs.
    pub fn eig_compute_payload(&mut self, assignment: &[usize], rank: usize) -> Vec<f32> {
        let mine: Vec<usize> = (0..self.factors.len())
            .filter(|&id| assignment[id] == rank)
            .collect();
        let mut payload = Vec::new();
        for id in mine {
            let so = self.compute_second_order(id);
            self.encode_second_order(&so, &mut payload);
        }
        payload
    }

    /// Staged second-order update, step 2: decode every owner's
    /// gathered payload — own rank included — into local second-order
    /// state. Decoding one's own payload is bitwise-neutral
    /// (`decode(encode(x)) == x`: both sides are plain `f32` copies),
    /// so the staged path matches [`Kfac::eig_apply_gathered`] exactly.
    #[allow(clippy::needless_range_loop)]
    pub fn eig_apply_all(&mut self, assignment: &[usize], gathered: &[Vec<f32>]) {
        let mut offsets = vec![0usize; gathered.len()];
        for fid in 0..self.factors.len() {
            let owner = assignment[fid];
            let len = self.wire_len(fid);
            let start = offsets[owner];
            offsets[owner] += len;
            let data = &gathered[owner][start..start + len];
            self.second_order[fid] = self.decode_second_order(fid, data);
        }
    }

    /// K-FAC-lw second-order update: each layer's owner computes both of
    /// its decompositions locally; nothing is communicated here (the
    /// preconditioned gradients travel every iteration instead).
    fn update_second_order_lw(&mut self, comm: &dyn Communicator) {
        let world = comm.size();
        let rank = comm.rank();
        let owners = assign_layers_lw(self.num_layers(), world);

        let owned = owners.iter().filter(|&&o| o == rank).count();
        let _comp_span = Span::enter("kfac/eig_comp")
            .with("iter", self.iteration)
            .with("layers", owned);
        for (li, &owner) in owners.iter().enumerate().take(self.num_layers()) {
            if owner == rank {
                for id in [2 * li, 2 * li + 1] {
                    self.second_order[id] = self.compute_second_order(id);
                }
            }
        }
        self.note_eig_update();
    }

    /// Phase: preconditioned gradient for one layer from stored
    /// second-order state (Eq. 13–15). Read-only; layers are
    /// independent, so calls may run in any order across `li`.
    pub fn precondition_one(&self, li: usize, grad: &Matrix) -> Matrix {
        // Precond-input rounding (Eq. 13–15 run on a bf16-width gradient;
        // the GEMMs themselves still accumulate in f32).
        let rounded;
        let grad = if self.cfg.precision.precond == Dtype::Bf16 {
            let mut g = grad.clone();
            round_bf16_in_place(g.as_mut_slice());
            rounded = g;
            &rounded
        } else {
            grad
        };
        match (&self.second_order[2 * li], &self.second_order[2 * li + 1]) {
            (FactorSecondOrder::Eigen(a), FactorSecondOrder::Eigen(g)) => precondition_eigen(
                &EigenPair {
                    a: a.clone(),
                    g: g.clone(),
                },
                grad,
                self.damping,
            ),
            (FactorSecondOrder::Inverse(a), FactorSecondOrder::Inverse(g)) => precondition_inverse(
                &InversePair {
                    a_inv: a.clone(),
                    g_inv: g.clone(),
                },
                grad,
            ),
            // No (or partial) second-order state — a failed first
            // eigendecomposition exchange can leave a layer without any.
            // Degrade to the damped identity: `grad / (1 + γ)`, i.e.
            // damped SGD for this layer, and count it.
            _ => {
                self.identity_preconds
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if let Some((registry, _)) = &self.telemetry {
                    registry.counter("kfac/identity_preconds").inc();
                }
                let mut pg = grad.clone();
                pg.scale(1.0 / (1.0 + self.damping));
                pg
            }
        }
    }

    /// Algorithm 1 lines 19–21 (K-FAC-opt): every rank preconditions all
    /// layers locally, then KL-clips.
    fn precondition_opt(&mut self, layers: &mut [&mut dyn KfacEligible], lr: f32) {
        let _span = Span::enter("kfac/precond").with("iter", self.iteration);
        let grads: Vec<Matrix> = layers.iter().map(|l| l.grad_matrix()).collect();
        let preconds: Vec<Matrix> = grads
            .iter()
            .enumerate()
            .map(|(li, g)| self.precondition_one(li, g))
            .collect();
        self.apply_with_clip(layers, &preconds, &grads, lr);
    }

    /// K-FAC-lw per-iteration path: owners precondition their layers and
    /// the results are allgathered (the extra per-iteration communication
    /// that §IV-C eliminates in K-FAC-opt).
    fn precondition_lw(
        &mut self,
        layers: &mut [&mut dyn KfacEligible],
        comm: &dyn Communicator,
        lr: f32,
    ) {
        let world = comm.size();
        let rank = comm.rank();
        let owners = assign_layers_lw(self.num_layers(), world);

        let _span = Span::enter("kfac/precond").with("iter", self.iteration);
        let grads: Vec<Matrix> = layers.iter().map(|l| l.grad_matrix()).collect();
        let mut payload = Vec::new();
        for (li, grad) in grads.iter().enumerate() {
            if owners[li] == rank {
                let pg = self.precondition_one(li, grad);
                payload.extend_from_slice(pg.as_slice());
            }
        }

        let mut preconds: Vec<Option<Matrix>> = vec![None; self.num_layers()];
        if world > 1 {
            let gathered = comm.allgather_tagged(&payload, TrafficClass::Precond);
            let mut offsets = vec![0usize; world];
            for (li, &(da, dg)) in self.layer_dims.iter().enumerate() {
                let owner = owners[li];
                let len = da * dg;
                let start = offsets[owner];
                offsets[owner] += len;
                let data = &gathered[owner][start..start + len];
                preconds[li] = Some(Matrix::from_vec(dg, da, data.to_vec()));
            }
        } else {
            let mut off = 0usize;
            for (li, &(da, dg)) in self.layer_dims.iter().enumerate() {
                let len = da * dg;
                preconds[li] = Some(Matrix::from_vec(dg, da, payload[off..off + len].to_vec()));
                off += len;
            }
        }
        let preconds: Vec<Matrix> = preconds.into_iter().map(|p| p.expect("gathered")).collect();
        self.apply_with_clip(layers, &preconds, &grads, lr);
    }

    /// Phase: apply the KL-clip ν (Eq. 18) and write preconditioned
    /// gradients back into the layers. The clip couples all layers
    /// (ν sums over every `(pg, g)` pair), so this phase runs once,
    /// after every [`Kfac::precondition_one`] is done.
    pub fn apply_with_clip(
        &self,
        layers: &mut [&mut dyn KfacEligible],
        preconds: &[Matrix],
        grads: &[Matrix],
        lr: f32,
    ) {
        let nu = match self.cfg.kl_clip {
            Some(kappa) => kl_clip_nu(preconds.iter().zip(grads.iter()), kappa, lr),
            None => 1.0,
        };
        self.last_nu_bits
            .store((nu as f64).to_bits(), std::sync::atomic::Ordering::Relaxed);
        if let Some((registry, _)) = &self.telemetry {
            // Trajectory probes, once per iteration. Read-only over the
            // already-computed gradients; skipped entirely (norms never
            // even computed) when monitoring is off.
            registry.gauge("kfac/kl_nu").set(nu as f64);
            registry
                .gauge("kfac/staleness_age")
                .set(self.iteration.saturating_sub(self.last_eig_iter) as f64);
            let mut pg_sq = 0.0f64;
            let mut g_sq = 0.0f64;
            for (pg, g) in preconds.iter().zip(grads.iter()) {
                pg_sq += pg
                    .as_slice()
                    .iter()
                    .map(|&v| (v as f64) * v as f64)
                    .sum::<f64>();
                g_sq += g
                    .as_slice()
                    .iter()
                    .map(|&v| (v as f64) * v as f64)
                    .sum::<f64>();
            }
            let ratio = if g_sq > 0.0 {
                (pg_sq / g_sq).sqrt()
            } else {
                0.0
            };
            self.precond_ratio_bits
                .store(ratio.to_bits(), std::sync::atomic::Ordering::Relaxed);
            registry.gauge("kfac/precond_ratio").set(ratio);
        }
        for (layer, pg) in layers.iter_mut().zip(preconds) {
            if nu != 1.0 {
                let mut scaled = pg.clone();
                scaled.scale(nu);
                layer.set_grad_matrix(&scaled);
            } else {
                layer.set_grad_matrix(pg);
            }
        }
    }

    /// Serialize the complete optimizer state — iteration counters,
    /// schedules, running-average factors and second-order state — into
    /// a self-describing little-endian byte stream. Restoring the bytes
    /// with [`Kfac::restore_state`] on an identically-configured
    /// instance reproduces continued training bitwise, which is what
    /// checkpoint-based rank-loss recovery requires.
    pub fn save_state(&self) -> Vec<u8> {
        fn put_u64(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
            for v in vs {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        let mut out = Vec::new();
        out.extend_from_slice(b"KFAC");
        put_u64(&mut out, 1); // format version
        put_u64(&mut out, self.iteration);
        put_u64(&mut out, self.epoch as u64);
        out.extend_from_slice(&self.damping.to_le_bytes());
        put_u64(&mut out, self.update_freq as u64);
        put_u64(&mut out, self.factor_updates);
        put_u64(&mut out, self.eig_updates);
        put_u64(&mut out, self.stale_factor_steps);
        put_u64(&mut out, self.eig_fallbacks);
        put_u64(
            &mut out,
            self.identity_preconds
                .load(std::sync::atomic::Ordering::Relaxed),
        );
        put_u64(&mut out, self.factors.len() as u64);
        for avg in &self.averages {
            match avg {
                Some(m) => {
                    out.push(1);
                    put_f32s(&mut out, m.as_slice());
                }
                None => out.push(0),
            }
        }
        for so in &self.second_order {
            match so {
                FactorSecondOrder::None => out.push(0),
                FactorSecondOrder::Eigen(e) => {
                    out.push(1);
                    put_f32s(&mut out, &e.to_bytes_f32());
                }
                FactorSecondOrder::Inverse(m) => {
                    out.push(2);
                    put_f32s(&mut out, m.as_slice());
                }
            }
        }
        out
    }

    /// Restore state captured by [`Kfac::save_state`]. The instance
    /// must have been built from the same model shape and config
    /// (factor inventory must match). Errors on malformed or
    /// mismatched bytes, leaving `self` unspecified only in the
    /// already-consumed scalar fields.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        struct Reader<'a>(&'a [u8]);
        impl Reader<'_> {
            fn take(&mut self, n: usize) -> Result<&[u8], String> {
                if self.0.len() < n {
                    return Err("kfac state truncated".into());
                }
                let (head, tail) = self.0.split_at(n);
                self.0 = tail;
                Ok(head)
            }
            fn u64(&mut self) -> Result<u64, String> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
            fn f32(&mut self) -> Result<f32, String> {
                Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn f32s(&mut self, n: usize) -> Result<Vec<f32>, String> {
                let raw = self.take(4 * n)?;
                Ok(raw
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                    .collect())
            }
            fn u8(&mut self) -> Result<u8, String> {
                Ok(self.take(1)?[0])
            }
        }
        let mut r = Reader(bytes);
        if r.take(4)? != b"KFAC" {
            return Err("not a kfac state blob".into());
        }
        if r.u64()? != 1 {
            return Err("unsupported kfac state version".into());
        }
        self.iteration = r.u64()?;
        self.epoch = r.u64()? as usize;
        self.damping = r.f32()?;
        self.update_freq = r.u64()? as usize;
        self.factor_updates = r.u64()?;
        self.eig_updates = r.u64()?;
        self.stale_factor_steps = r.u64()?;
        self.eig_fallbacks = r.u64()?;
        self.identity_preconds = std::sync::atomic::AtomicU64::new(r.u64()?);
        let n_factors = r.u64()? as usize;
        if n_factors != self.factors.len() {
            return Err(format!(
                "kfac state has {n_factors} factors, model has {}",
                self.factors.len()
            ));
        }
        for id in 0..n_factors {
            let n = self.factors[id].dim;
            self.averages[id] = match r.u8()? {
                0 => None,
                1 => Some(Matrix::from_vec(n, n, r.f32s(n * n)?)),
                t => return Err(format!("bad average tag {t}")),
            };
        }
        for id in 0..n_factors {
            let n = self.factors[id].dim;
            self.second_order[id] = match r.u8()? {
                0 => FactorSecondOrder::None,
                1 => FactorSecondOrder::Eigen(EigenDecomposition::from_bytes_f32(
                    n,
                    &r.f32s(EigenDecomposition::wire_len(n))?,
                )),
                2 => FactorSecondOrder::Inverse(Matrix::from_vec(n, n, r.f32s(n * n)?)),
                t => return Err(format!("bad second-order tag {t}")),
            };
        }
        if !r.0.is_empty() {
            return Err("trailing bytes in kfac state".into());
        }
        // Probe state is not serialized (the version-1 format predates
        // it and it never feeds the math); a restored instance starts
        // with fresh second-order state, so staleness resets here.
        self.last_eig_iter = self.iteration;
        // EMA compensation residuals are likewise not serialized: they
        // restart from zero, costing at most one bf16 ulp of transient
        // drift after a restore.
        for r in &mut self.ema_residual {
            r.clear();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The compensated fold tracks the f64 reference EMA exactly through
    /// `stored + residual`, even after hundreds of folds where a naive
    /// bf16 EMA visibly drifts (xi=0.95 shrinks each (1-xi)·new
    /// contribution below bf16 resolution of the accumulated value, so
    /// uncompensated rounding swallows updates wholesale).
    #[test]
    fn compensated_ema_matches_f64_reference() {
        let n = 16;
        let xi = 0.95f64;
        let mut stored = Matrix::from_vec(4, 4, vec![0.0; n]);
        // Seed at bf16 like the first-capture path does.
        let seed: Vec<f32> = (0..n).map(|i| 1.0 + 0.01 * i as f32).collect();
        let mut residual = Vec::new();
        for (s, &v) in stored.as_mut_slice().iter_mut().zip(&seed) {
            *s = bf16_to_f32(f32_to_bf16(v));
            residual.push(v as f64 - *s as f64);
        }
        let mut reference: Vec<f64> = seed.iter().map(|&v| v as f64).collect();
        let mut naive: Vec<f32> = stored.as_slice().to_vec();
        for step in 1..400 {
            let new: Vec<f32> = (0..n)
                .map(|i| 1.0 + 0.01 * i as f32 + 0.001 * (step as f32 * 0.7).sin())
                .collect();
            let new = Matrix::from_vec(4, 4, new);
            let mag = fold_compensated(&mut stored, &mut residual, &new, xi);
            assert!(
                mag <= 1.0 / 128.0,
                "residual bounded by one bf16 ulp: {mag}"
            );
            for (r, &v) in reference.iter_mut().zip(new.as_slice()) {
                *r = xi * *r + (1.0 - xi) * v as f64;
            }
            for (s, &v) in naive.iter_mut().zip(new.as_slice()) {
                *s = bf16_to_f32(f32_to_bf16((xi as f32 * *s) + (1.0 - xi as f32) * v));
            }
        }
        for ((&s, &r), &exact) in stored.as_slice().iter().zip(&residual).zip(&reference) {
            // stored + residual IS the f64 trajectory (up to f64 fold
            // associativity, far below bf16 scale).
            assert!(
                (s as f64 + r - exact).abs() < 1e-9,
                "stored+residual drifted: {} vs {exact}",
                s as f64 + r
            );
            // And the stored value is the bf16 rounding of it.
            assert_eq!(s, bf16_to_f32(f32_to_bf16(s)), "storage stays bf16");
            assert!((s as f64 - exact).abs() <= exact.abs() / 256.0);
        }
        // The uncompensated EMA drifts measurably further on at least
        // some elements (it need not on all — drift depends on where
        // values sit between bf16 grid points).
        let comp_err: f64 = stored
            .as_slice()
            .iter()
            .zip(&reference)
            .map(|(&s, &e)| (s as f64 - e).abs())
            .sum();
        let naive_err: f64 = naive
            .iter()
            .zip(&reference)
            .map(|(&s, &e)| (s as f64 - e).abs())
            .sum();
        assert!(
            comp_err <= naive_err,
            "compensation must not be worse: comp {comp_err} naive {naive_err}"
        );
    }
}
