//! The distributed K-FAC preconditioner — Algorithm 1 of the paper.
//!
//! One [`Kfac`] instance lives on each rank. Per training iteration (after
//! gradients have been allreduced, mirroring `optimizer.synchronize()` in
//! Listing 1) the rank calls [`Kfac::step`], which:
//!
//! 1. **Factor update** (every `update_freq / 10` iterations): computes
//!    local Kronecker factors from the captured activations/gradients,
//!    folds them into running averages (Eq. 16–17) and allreduces the
//!    averages (Algorithm 1 lines 4–8).
//! 2. **Second-order update** (every `update_freq` iterations): assigns
//!    each factor to a rank (round-robin, Fig. 3 step 2), eigendecomposes
//!    (or explicitly inverts) the locally-assigned factors, and
//!    allgathers the results (lines 10–18).
//! 3. **Preconditioning** (every iteration): computes
//!    `(F̂ + γI)⁻¹ ∇L` locally for all layers (Eq. 13–15), applies the
//!    KL-clip ν (Eq. 18), and writes the result back into the layers'
//!    gradients, ready for any first-order optimizer (lines 19–21).
//!
//! Between second-order updates, stale eigendecompositions are reused and
//! **no K-FAC communication happens at all** — the decoupling that §IV-C
//! credits for K-FAC-opt's scaling advantage. The K-FAC-lw strategy of
//! Osawa et al. \[6\] is implemented alongside for the Fig. 7–9 comparison:
//! there, a layer's owner computes both decompositions *and* the
//! preconditioned gradient, which is then exchanged every iteration.

use crate::config::{DistStrategy, InversionMethod, KfacConfig};
use crate::distribution::{assign_factors, assign_layers_lw, factor_descs, FactorDesc};
use crate::math::{
    decompose_factor_with, invert_factor, kl_clip_nu, precondition_eigen, precondition_inverse,
    EigenPair, InversePair,
};
use crate::stats::StageStats;
use kfac_collectives::{Communicator, ReduceOp, TrafficClass};
use kfac_nn::{KfacEligible, Layer};
use kfac_telemetry::{Registry, Span};
use kfac_tensor::{EigenDecomposition, Matrix};

/// Per-factor second-order state.
enum FactorSecondOrder {
    None,
    Eigen(EigenDecomposition),
    Inverse(Matrix),
}

/// Distributed K-FAC gradient preconditioner (one instance per rank).
pub struct Kfac {
    cfg: KfacConfig,
    /// `(dim_A, dim_G)` per K-FAC-eligible layer, in structural order.
    layer_dims: Vec<(usize, usize)>,
    factors: Vec<FactorDesc>,
    /// Running-average factors, indexed by factor id.
    averages: Vec<Option<Matrix>>,
    /// Second-order state (eig or inverse), indexed by factor id.
    second_order: Vec<FactorSecondOrder>,
    iteration: u64,
    epoch: usize,
    damping: f32,
    update_freq: usize,
    /// Ambient telemetry captured at construction (registry + the rank
    /// this instance records as). All stage timing lives there; `None`
    /// when the constructing thread had no recorder installed, in which
    /// case [`Kfac::stats`] reports zero durations but correct counts.
    telemetry: Option<(Registry, usize)>,
    factor_updates: u64,
    eig_updates: u64,
}

impl Kfac {
    /// Build a preconditioner for `model`. Every rank must construct it
    /// from an identically-shaped model.
    pub fn new(model: &mut dyn Layer, cfg: KfacConfig) -> Self {
        cfg.validate();
        let mut layers = Vec::new();
        model.collect_kfac(&mut layers);
        assert!(
            !layers.is_empty(),
            "model has no K-FAC-eligible (Linear/Conv2d) layers"
        );
        let layer_dims: Vec<(usize, usize)> = layers.iter().map(|l| l.factor_dims()).collect();
        let factors = factor_descs(&layer_dims);
        let n_factors = factors.len();
        let damping = cfg.damping;
        let update_freq = cfg.update_freq;
        Kfac {
            cfg,
            layer_dims,
            factors,
            averages: vec![None; n_factors],
            second_order: (0..n_factors).map(|_| FactorSecondOrder::None).collect(),
            iteration: 0,
            epoch: 0,
            damping,
            update_freq,
            telemetry: kfac_telemetry::current(),
            factor_updates: 0,
            eig_updates: 0,
        }
    }

    /// Number of K-FAC-eligible layers.
    pub fn num_layers(&self) -> usize {
        self.layer_dims.len()
    }

    /// The factor inventory (for placement analysis / Table VI).
    pub fn factors(&self) -> &[FactorDesc] {
        &self.factors
    }

    /// Stage timing accumulated on this rank, as a view over the
    /// telemetry registry: each duration is the summed time of the
    /// matching `kfac/*` spans this rank recorded, so this is exactly
    /// consistent with what the trace exporters see — there is no
    /// second bookkeeping path. Counts are algorithmic state and are
    /// correct even without an installed recorder.
    pub fn stats(&self) -> StageStats {
        let mut stats = StageStats::new();
        stats.factor_updates = self.factor_updates;
        stats.eig_updates = self.eig_updates;
        stats.steps = self.iteration;
        if let Some((registry, rank)) = &self.telemetry {
            // Spans publish in batches; push this thread's tail so the
            // view is exact at the moment of the snapshot.
            kfac_telemetry::flush();
            let rank = Some(*rank);
            stats.factor_comp = registry.span_agg("kfac/factor_comp", rank).total;
            stats.factor_comm = registry.span_agg("kfac/factor_comm", rank).total;
            stats.eig_comp = registry.span_agg("kfac/eig_comp", rank).total;
            stats.eig_comm = registry.span_agg("kfac/eig_comm", rank).total;
            stats.precond = registry.span_agg("kfac/precond", rank).total;
        }
        stats
    }

    /// Current damping γ (after decays).
    pub fn damping(&self) -> f32 {
        self.damping
    }

    /// Current eigendecomposition update interval (after decays).
    pub fn update_freq(&self) -> usize {
        self.update_freq
    }

    /// Iterations between factor updates.
    pub fn factor_interval(&self) -> usize {
        (self.update_freq / self.cfg.factor_freq_multiplier).max(1)
    }

    /// Inform the preconditioner of the current epoch; applies the
    /// damping-decay and update-frequency-decay schedules of §V-C.
    pub fn set_epoch(&mut self, epoch: usize) {
        self.epoch = epoch;
        self.damping = self.cfg.damping_at(epoch);
        self.update_freq = self.cfg.update_freq_at(epoch);
    }

    /// Whether the *next* [`Kfac::step`] will recompute factors — the
    /// trainer enables activation/gradient capture on the model exactly
    /// for these iterations, so ordinary iterations pay no capture cost.
    pub fn needs_capture(&self) -> bool {
        self.is_factor_iteration()
    }

    /// Whether the current iteration recomputes Kronecker factors
    /// (Algorithm 1 lines 4–8 run this step).
    pub fn is_factor_iteration(&self) -> bool {
        self.iteration.is_multiple_of(self.factor_interval() as u64)
    }

    /// Whether the current iteration recomputes eigendecompositions
    /// (Algorithm 1 lines 9–18 run this step).
    pub fn is_eig_iteration(&self) -> bool {
        self.iteration.is_multiple_of(self.update_freq as u64)
    }

    /// Zero-based index of the current iteration (increments on
    /// [`Kfac::advance`], which [`Kfac::step`] calls last).
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Finish the current iteration. [`Kfac::step`] calls this
    /// internally; phase-level drivers (the overlapped execution graph)
    /// call it once after their last phase.
    pub fn advance(&mut self) {
        self.iteration += 1;
    }

    /// Run one preconditioning step (Algorithm 1). Call after the
    /// gradient allreduce and before `optimizer.step()`, exactly like
    /// `preconditioner.step()` in Listing 1.
    pub fn step(&mut self, model: &mut dyn Layer, comm: &dyn Communicator, lr: f32) {
        let mut layers = Vec::new();
        model.collect_kfac(&mut layers);
        assert_eq!(
            layers.len(),
            self.layer_dims.len(),
            "model structure changed since Kfac::new"
        );

        if self.is_factor_iteration() {
            self.update_factors(&layers, comm);
        }
        let eig_update = self.is_eig_iteration();
        match self.cfg.strategy {
            DistStrategy::Opt => {
                if eig_update {
                    self.update_second_order_opt(comm);
                }
                self.precondition_opt(&mut layers, lr);
            }
            DistStrategy::Lw => {
                if eig_update {
                    self.update_second_order_lw(comm);
                }
                self.precondition_lw(&mut layers, comm, lr);
            }
        }
        self.advance();
    }

    /// Algorithm 1 lines 4–8: local factor computation, running-average
    /// update, fused allreduce. Composed from the phase methods below so
    /// the sequential and overlapped paths share identical numerics.
    fn update_factors(&mut self, layers: &[&mut dyn KfacEligible], comm: &dyn Communicator) {
        let comp_span = Span::enter("kfac/factor_comp")
            .with("iter", self.iteration)
            .with("layers", layers.len());
        for (li, layer) in layers.iter().enumerate() {
            self.factor_update_layer(li, &**layer);
        }
        drop(comp_span);

        let _comm_span = Span::enter("kfac/factor_comm").with("iter", self.iteration);
        if comm.size() > 1 {
            let mut fused = self.factor_pack();
            comm.allreduce_tagged(&mut fused, ReduceOp::Average, TrafficClass::Factor);
            self.factor_unpack(&fused);
        }
        self.note_factor_update();
    }

    /// Phase: compute K-FAC-eligible layer `li`'s Kronecker factors from
    /// its capture and fold them into the running averages (Eq. 16–17).
    /// Layers are independent, so calls may run in any order / in
    /// parallel across `li`.
    pub fn factor_update_layer(&mut self, li: usize, layer: &dyn KfacEligible) {
        assert!(
            layer.has_capture(),
            "factor update at iteration {} but layer {} ({}) has no capture; \
             enable capture when needs_capture() is true",
            self.iteration,
            li,
            layer.kfac_name()
        );
        let (a, g) = layer.compute_factors();
        let xi = self.cfg.running_avg;
        for (id, new) in [(2 * li, a), (2 * li + 1, g)] {
            match &mut self.averages[id] {
                Some(avg) => avg.axpby(xi, &new, 1.0 - xi),
                slot @ None => *slot = Some(new),
            }
        }
    }

    /// Phase: pack every running-average factor into one fused payload
    /// for a single allreduce (the fusion-buffer rationale of §II-D;
    /// factors are small and numerous). With `triangular_factor_comm`
    /// only the upper triangle travels: factors are symmetric, so this
    /// halves the payload exactly.
    pub fn factor_pack(&self) -> Vec<f32> {
        let triangular = self.cfg.triangular_factor_comm;
        let mut fused = Vec::new();
        for avg in self.averages.iter().flatten() {
            if triangular {
                let n = avg.rows();
                for i in 0..n {
                    fused.extend_from_slice(&avg.row(i)[i..]);
                }
            } else {
                fused.extend_from_slice(avg.as_slice());
            }
        }
        fused
    }

    /// Phase: write an allreduced fused payload (from
    /// [`Kfac::factor_pack`]) back into the running averages, mirroring
    /// the lower triangle when triangular packing is on.
    pub fn factor_unpack(&mut self, fused: &[f32]) {
        let triangular = self.cfg.triangular_factor_comm;
        let mut off = 0;
        for avg in self.averages.iter_mut().flatten() {
            if triangular {
                let n = avg.rows();
                for i in 0..n {
                    let len = n - i;
                    avg.row_mut(i)[i..].copy_from_slice(&fused[off..off + len]);
                    off += len;
                }
                // Mirror onto the lower triangle.
                for i in 0..n {
                    for j in (i + 1)..n {
                        let v = avg[(i, j)];
                        avg[(j, i)] = v;
                    }
                }
            } else {
                let len = avg.len();
                avg.as_mut_slice().copy_from_slice(&fused[off..off + len]);
                off += len;
            }
        }
    }

    /// Phase: record that a factor update completed (statistics only).
    pub fn note_factor_update(&mut self) {
        self.factor_updates += 1;
    }

    /// Compute the second-order representation (eig or inverse) of one
    /// factor from its running average.
    fn compute_second_order(&self, id: usize) -> FactorSecondOrder {
        let avg = self.averages[id]
            .as_ref()
            .expect("factor average exists before second-order update");
        match self.cfg.inversion {
            InversionMethod::Eigen => FactorSecondOrder::Eigen(
                decompose_factor_with(avg, self.cfg.eigen_solver)
                    .expect("factor eigendecomposition converges"),
            ),
            InversionMethod::ExplicitInverse => FactorSecondOrder::Inverse(
                invert_factor(avg, self.damping).expect("damped factor is invertible"),
            ),
        }
    }

    /// Wire length (f32 words) of one factor's second-order payload.
    fn wire_len(&self, id: usize) -> usize {
        let n = self.factors[id].dim;
        match self.cfg.inversion {
            InversionMethod::Eigen => EigenDecomposition::wire_len(n),
            InversionMethod::ExplicitInverse => n * n,
        }
    }

    fn encode_second_order(&self, so: &FactorSecondOrder, out: &mut Vec<f32>) {
        match so {
            FactorSecondOrder::Eigen(e) => out.extend_from_slice(&e.to_bytes_f32()),
            FactorSecondOrder::Inverse(m) => out.extend_from_slice(m.as_slice()),
            FactorSecondOrder::None => unreachable!("encoding empty second-order state"),
        }
    }

    fn decode_second_order(&self, id: usize, data: &[f32]) -> FactorSecondOrder {
        let n = self.factors[id].dim;
        match self.cfg.inversion {
            InversionMethod::Eigen => {
                FactorSecondOrder::Eigen(EigenDecomposition::from_bytes_f32(n, data))
            }
            InversionMethod::ExplicitInverse => {
                FactorSecondOrder::Inverse(Matrix::from_vec(n, n, data.to_vec()))
            }
        }
    }

    /// Algorithm 1 lines 9–18 (K-FAC-opt): round-robin factor assignment,
    /// local decompositions, allgather. Composed from the phase methods
    /// below so the sequential and overlapped paths share identical
    /// numerics.
    fn update_second_order_opt(&mut self, comm: &dyn Communicator) {
        let world = comm.size();
        let rank = comm.rank();
        let assignment = self.eig_assignment(world);

        let owned = assignment.iter().filter(|&&o| o == rank).count();
        let comp_span = Span::enter("kfac/eig_comp")
            .with("iter", self.iteration)
            .with("factors", owned);
        let mine: Vec<usize> = (0..self.factors.len())
            .filter(|&id| assignment[id] == rank)
            .collect();
        for id in mine {
            self.eig_compute_one(id);
        }
        drop(comp_span);

        let _comm_span = Span::enter("kfac/eig_comm").with("iter", self.iteration);
        if world > 1 {
            let payload = self.eig_local_payload(&assignment, rank);
            let gathered = comm.allgather_tagged(&payload, TrafficClass::Eigen);
            self.eig_apply_gathered(&assignment, rank, &gathered);
        }
        self.note_eig_update();
    }

    /// Phase: the factor→rank ownership map for a `world`-rank group
    /// (round-robin / cost-balanced per the placement policy, Fig. 3
    /// step 2). Deterministic: every rank computes the same map.
    pub fn eig_assignment(&self, world: usize) -> Vec<usize> {
        assign_factors(self.cfg.placement, &self.factors, world)
    }

    /// Phase: eigendecompose (or invert) factor `id` from its running
    /// average and store the result locally. Factors are independent, so
    /// calls may run in any order across `id`.
    pub fn eig_compute_one(&mut self, id: usize) {
        self.second_order[id] = self.compute_second_order(id);
    }

    /// Phase: serialize this rank's owned second-order results (factor
    /// id order) into the allgather payload of Algorithm 1 line 18.
    pub fn eig_local_payload(&self, assignment: &[usize], rank: usize) -> Vec<f32> {
        let mut payload = Vec::new();
        for f in &self.factors {
            if assignment[f.id] == rank {
                self.encode_second_order(&self.second_order[f.id], &mut payload);
            }
        }
        payload
    }

    /// Phase: decode every other rank's allgathered payload into local
    /// second-order state. Walks factors in id order, consuming each
    /// owner's payload sequentially (the deterministic-assignment
    /// property makes the framing implicit).
    pub fn eig_apply_gathered(&mut self, assignment: &[usize], rank: usize, gathered: &[Vec<f32>]) {
        let mut offsets = vec![0usize; gathered.len()];
        for f in &self.factors {
            let owner = assignment[f.id];
            let len = self.wire_len(f.id);
            let start = offsets[owner];
            offsets[owner] += len;
            if owner == rank {
                continue; // already stored locally
            }
            let data = &gathered[owner][start..start + len];
            self.second_order[f.id] = self.decode_second_order(f.id, data);
        }
    }

    /// Phase: record that a second-order update completed (statistics
    /// only).
    pub fn note_eig_update(&mut self) {
        self.eig_updates += 1;
    }

    /// K-FAC-lw second-order update: each layer's owner computes both of
    /// its decompositions locally; nothing is communicated here (the
    /// preconditioned gradients travel every iteration instead).
    fn update_second_order_lw(&mut self, comm: &dyn Communicator) {
        let world = comm.size();
        let rank = comm.rank();
        let owners = assign_layers_lw(self.num_layers(), world);

        let owned = owners.iter().filter(|&&o| o == rank).count();
        let _comp_span = Span::enter("kfac/eig_comp")
            .with("iter", self.iteration)
            .with("layers", owned);
        for (li, &owner) in owners.iter().enumerate().take(self.num_layers()) {
            if owner == rank {
                for id in [2 * li, 2 * li + 1] {
                    self.second_order[id] = self.compute_second_order(id);
                }
            }
        }
        self.note_eig_update();
    }

    /// Phase: preconditioned gradient for one layer from stored
    /// second-order state (Eq. 13–15). Read-only; layers are
    /// independent, so calls may run in any order across `li`.
    pub fn precondition_one(&self, li: usize, grad: &Matrix) -> Matrix {
        match (&self.second_order[2 * li], &self.second_order[2 * li + 1]) {
            (FactorSecondOrder::Eigen(a), FactorSecondOrder::Eigen(g)) => precondition_eigen(
                &EigenPair {
                    a: a.clone(),
                    g: g.clone(),
                },
                grad,
                self.damping,
            ),
            (FactorSecondOrder::Inverse(a), FactorSecondOrder::Inverse(g)) => precondition_inverse(
                &InversePair {
                    a_inv: a.clone(),
                    g_inv: g.clone(),
                },
                grad,
            ),
            _ => unreachable!("second-order state missing for layer {li}"),
        }
    }

    /// Algorithm 1 lines 19–21 (K-FAC-opt): every rank preconditions all
    /// layers locally, then KL-clips.
    fn precondition_opt(&mut self, layers: &mut [&mut dyn KfacEligible], lr: f32) {
        let _span = Span::enter("kfac/precond").with("iter", self.iteration);
        let grads: Vec<Matrix> = layers.iter().map(|l| l.grad_matrix()).collect();
        let preconds: Vec<Matrix> = grads
            .iter()
            .enumerate()
            .map(|(li, g)| self.precondition_one(li, g))
            .collect();
        self.apply_with_clip(layers, &preconds, &grads, lr);
    }

    /// K-FAC-lw per-iteration path: owners precondition their layers and
    /// the results are allgathered (the extra per-iteration communication
    /// that §IV-C eliminates in K-FAC-opt).
    fn precondition_lw(
        &mut self,
        layers: &mut [&mut dyn KfacEligible],
        comm: &dyn Communicator,
        lr: f32,
    ) {
        let world = comm.size();
        let rank = comm.rank();
        let owners = assign_layers_lw(self.num_layers(), world);

        let _span = Span::enter("kfac/precond").with("iter", self.iteration);
        let grads: Vec<Matrix> = layers.iter().map(|l| l.grad_matrix()).collect();
        let mut payload = Vec::new();
        for (li, grad) in grads.iter().enumerate() {
            if owners[li] == rank {
                let pg = self.precondition_one(li, grad);
                payload.extend_from_slice(pg.as_slice());
            }
        }

        let mut preconds: Vec<Option<Matrix>> = vec![None; self.num_layers()];
        if world > 1 {
            let gathered = comm.allgather_tagged(&payload, TrafficClass::Precond);
            let mut offsets = vec![0usize; world];
            for (li, &(da, dg)) in self.layer_dims.iter().enumerate() {
                let owner = owners[li];
                let len = da * dg;
                let start = offsets[owner];
                offsets[owner] += len;
                let data = &gathered[owner][start..start + len];
                preconds[li] = Some(Matrix::from_vec(dg, da, data.to_vec()));
            }
        } else {
            let mut off = 0usize;
            for (li, &(da, dg)) in self.layer_dims.iter().enumerate() {
                let len = da * dg;
                preconds[li] = Some(Matrix::from_vec(dg, da, payload[off..off + len].to_vec()));
                off += len;
            }
        }
        let preconds: Vec<Matrix> = preconds.into_iter().map(|p| p.expect("gathered")).collect();
        self.apply_with_clip(layers, &preconds, &grads, lr);
    }

    /// Phase: apply the KL-clip ν (Eq. 18) and write preconditioned
    /// gradients back into the layers. The clip couples all layers
    /// (ν sums over every `(pg, g)` pair), so this phase runs once,
    /// after every [`Kfac::precondition_one`] is done.
    pub fn apply_with_clip(
        &self,
        layers: &mut [&mut dyn KfacEligible],
        preconds: &[Matrix],
        grads: &[Matrix],
        lr: f32,
    ) {
        let nu = match self.cfg.kl_clip {
            Some(kappa) => kl_clip_nu(preconds.iter().zip(grads.iter()), kappa, lr),
            None => 1.0,
        };
        for (layer, pg) in layers.iter_mut().zip(preconds) {
            if nu != 1.0 {
                let mut scaled = pg.clone();
                scaled.scale(nu);
                layer.set_grad_matrix(&scaled);
            } else {
                layer.set_grad_matrix(pg);
            }
        }
    }
}
