//! Per-iteration time model — the paper's Figure-1 pipeline, priced.
//!
//! §VI-C4 explains observed scaling with the five-step decomposition
//! `T_io, T_f, T_e, T_x, T_u` and assumes "these steps are performed in
//! sequential order without any pipeline parallelism"; we adopt the same
//! assumption. K-FAC adds to `T_e`:
//!
//! * **factor computation** — constant in GPU count (Table V), priced by
//!   the calibrated power law of [`GpuSpec`](crate::hardware::GpuSpec);
//! * **eigendecomposition** — bounded by the slowest worker (Table VI),
//!   computed from the *real* placement code over the *real* factor
//!   inventory;
//! * **preconditioning** — every iteration, priced by the calibrated
//!   depth power law;
//!
//! each amortized over its update interval. K-FAC-lw differs exactly as
//! §VI-C3 describes: layer-granularity placement (half the utilization)
//! and per-layer preconditioned-gradient exchange *every* iteration.

use crate::hardware::ClusterSpec;
use crate::profile::{resnet50_reference, ModelProfile};
use kfac::distribution::{assign_factors, assign_layers_lw, per_rank_cost};
use kfac::PlacementPolicy;

/// K-FAC amortization and distribution knobs for the model.
#[derive(Debug, Clone, Copy)]
pub struct KfacRunConfig {
    /// Iterations between second-order (eig) updates.
    pub update_freq: usize,
    /// Factor updates happen this many times per eig update (paper: 10).
    pub factor_freq_multiplier: usize,
    /// Placement policy for K-FAC-opt.
    pub placement: PlacementPolicy,
}

impl KfacRunConfig {
    /// Paper defaults with a given update frequency.
    pub fn with_freq(update_freq: usize) -> Self {
        KfacRunConfig {
            update_freq,
            factor_freq_multiplier: 10,
            placement: PlacementPolicy::RoundRobin,
        }
    }

    /// Iterations between factor updates.
    pub fn factor_interval(&self) -> usize {
        (self.update_freq / self.factor_freq_multiplier).max(1)
    }
}

/// One iteration's priced stages, seconds. All times are per-iteration
/// *averages*: K-FAC stage costs are divided by their update intervals.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimes {
    /// Forward compute.
    pub fwd: f64,
    /// Backward compute (gradient evaluation).
    pub bwd: f64,
    /// Fixed framework overhead (I/O, BatchNorm, launch costs).
    pub framework: f64,
    /// Gradient allreduce.
    pub grad_comm: f64,
    /// Factor computation, amortized.
    pub factor_comp: f64,
    /// Factor allreduce, amortized.
    pub factor_comm: f64,
    /// Eigendecomposition makespan, amortized.
    pub eig_comp: f64,
    /// Eigendecomposition allgather, amortized.
    pub eig_comm: f64,
    /// Gradient preconditioning (plus, for K-FAC-lw, the per-iteration
    /// preconditioned-gradient exchange).
    pub precond: f64,
}

impl StageTimes {
    /// Total iteration time.
    pub fn total(&self) -> f64 {
        self.fwd
            + self.bwd
            + self.framework
            + self.grad_comm
            + self.factor_comp
            + self.factor_comm
            + self.eig_comp
            + self.eig_comm
            + self.precond
    }
}

/// Straggler distribution: each rank independently runs `slowdown`×
/// slower than nominal with probability `prob` on any given iteration.
///
/// Synchronous collectives complete at the pace of the slowest
/// participant, so the expected per-iteration communication penalty is
/// the expected maximum over ranks:
///
/// ```text
/// E[factor] = 1 + (1 − (1−p)^world) · slowdown
/// ```
///
/// i.e. the probability *any* rank straggles times its extra cost. The
/// factor grows monotonically with both `prob` and world size —
/// stragglers hurt more at scale, which is why the fault-tolerance
/// ladder (see `kfac-harness::resilient`) bounds every collective with
/// a deadline instead of waiting indefinitely.
#[derive(Debug, Clone, Copy)]
pub struct StragglerDist {
    /// Per-rank, per-iteration probability of straggling.
    pub prob: f64,
    /// Extra time a straggling rank adds, as a multiple of the nominal
    /// stage time (`1.0` = twice as slow).
    pub slowdown: f64,
}

impl StragglerDist {
    /// Expected slowest-rank slowdown factor for a `world`-rank
    /// synchronous collective (≥ 1).
    pub fn expected_max_factor(&self, world: usize) -> f64 {
        let p_any = 1.0 - (1.0 - self.prob.clamp(0.0, 1.0)).powi(world as i32);
        1.0 + p_any * self.slowdown.max(0.0)
    }
}

/// The iteration model for one (model, cluster, local-batch) triple.
#[derive(Debug, Clone)]
pub struct IterationModel {
    /// Model being trained.
    pub profile: ModelProfile,
    /// Cluster it runs on.
    pub cluster: ClusterSpec,
    /// Per-GPU mini-batch (paper: 32).
    pub local_batch: usize,
    /// Optional straggler distribution scaling all synchronous
    /// communication stages by the expected slowest-rank factor.
    pub stragglers: Option<StragglerDist>,
}

impl IterationModel {
    /// Create the model.
    pub fn new(profile: ModelProfile, cluster: ClusterSpec, local_batch: usize) -> Self {
        IterationModel {
            profile,
            cluster,
            local_batch,
            stragglers: None,
        }
    }

    /// Price iterations under a straggler distribution: every
    /// synchronous communication stage is scaled by
    /// [`StragglerDist::expected_max_factor`] for this cluster's size.
    pub fn with_stragglers(mut self, dist: StragglerDist) -> Self {
        self.stragglers = Some(dist);
        self
    }

    fn comm_scale(&self) -> f64 {
        self.stragglers
            .map(|s| s.expected_max_factor(self.cluster.gpus))
            .unwrap_or(1.0)
    }

    fn fwd_s(&self) -> f64 {
        self.local_batch as f64 * self.profile.fwd_flops as f64 / self.cluster.gpu.gemm_flops
    }

    /// Backward ≈ 2× forward (two GEMMs per layer vs one).
    fn bwd_s(&self) -> f64 {
        2.0 * self.fwd_s()
    }

    fn grad_comm_s(&self) -> f64 {
        self.comm_scale()
            * self
                .cluster
                .link
                .allreduce_s(self.profile.grad_bytes(), self.cluster.gpus)
    }

    /// Un-amortized factor-stage times `(comp, comm)` for one factor
    /// update — the quantities Table V reports directly. Computation
    /// follows the calibrated power law in total factor FLOPs; it is
    /// constant in GPU count (each rank processes its own local batch).
    pub fn factor_stage_s(&self) -> (f64, f64) {
        let gpu = &self.cluster.gpu;
        let (anchor_flops, _) = resnet50_reference();
        let ratio = self.profile.factor_flops as f64 / anchor_flops;
        let comp = gpu.factor_anchor_s
            * (self.local_batch as f64 / 32.0)
            * ratio.powf(gpu.factor_exponent);
        let comm = self.comm_scale()
            * self
                .cluster
                .link
                .allreduce_s(self.profile.factor_bytes(), self.cluster.gpus);
        (comp, comm)
    }

    /// Un-amortized eig-stage times `(comp_makespan, comm)` for one
    /// second-order update under K-FAC-opt with the given placement —
    /// Table V's other half.
    pub fn eig_stage_s(&self, placement: PlacementPolicy) -> (f64, f64) {
        let world = self.cluster.gpus;
        let assignment = assign_factors(placement, &self.profile.factors, world);
        let makespan_flops =
            9 * kfac::distribution::makespan(&self.profile.factors, &assignment, world);
        let comp = makespan_flops as f64 / self.cluster.gpu.eig_flops;
        let comm = self.comm_scale()
            * self
                .cluster
                .link
                .allgather_s(self.profile.eig_bytes(), world);
        (comp, comm)
    }

    /// Per-rank eigendecomposition times for one update (Table VI's
    /// underlying distribution). Each assigned factor also pays a fixed
    /// per-decomposition launch overhead, which keeps the fastest-worker
    /// time from collapsing to zero (the paper's fastest workers speed up
    /// 6–8×, not ∞, between 16 and 64 GPUs).
    pub fn eig_worker_times_s(&self, placement: PlacementPolicy) -> Vec<f64> {
        const PER_FACTOR_OVERHEAD_S: f64 = 0.5e-3;
        let world = self.cluster.gpus;
        let assignment = assign_factors(placement, &self.profile.factors, world);
        let mut counts = vec![0usize; world];
        for f in &self.profile.factors {
            counts[assignment[f.id]] += 1;
        }
        per_rank_cost(&self.profile.factors, &assignment, world)
            .into_iter()
            .zip(counts)
            .map(|(load, n)| {
                9.0 * load as f64 / self.cluster.gpu.eig_flops + n as f64 * PER_FACTOR_OVERHEAD_S
            })
            .collect()
    }

    /// Per-iteration local preconditioning cost: the calibrated depth
    /// power law over `layers` K-FAC layers.
    fn precond_s(&self, layers: usize) -> f64 {
        if layers == 0 {
            return 0.0;
        }
        let gpu = &self.cluster.gpu;
        let (_, anchor_layers) = resnet50_reference();
        gpu.precond_anchor_s * (layers as f64 / anchor_layers as f64).powf(gpu.precond_exponent)
    }

    /// SGD iteration (Fig. 1 with no preconditioning).
    pub fn sgd_iteration(&self) -> StageTimes {
        StageTimes {
            fwd: self.fwd_s(),
            bwd: self.bwd_s(),
            framework: self.cluster.gpu.framework_overhead_s,
            grad_comm: self.grad_comm_s(),
            ..StageTimes::default()
        }
    }

    /// K-FAC-opt iteration: stage costs amortized over their intervals;
    /// preconditioning local (every iteration, no communication).
    pub fn kfac_opt_iteration(&self, cfg: KfacRunConfig) -> StageTimes {
        let (fc, fx) = self.factor_stage_s();
        let (ec, ex) = self.eig_stage_s(cfg.placement);
        let fi = cfg.factor_interval() as f64;
        let ei = cfg.update_freq as f64;
        StageTimes {
            fwd: self.fwd_s(),
            bwd: self.bwd_s(),
            framework: self.cluster.gpu.framework_overhead_s,
            grad_comm: self.grad_comm_s(),
            factor_comp: fc / fi,
            factor_comm: fx / fi,
            eig_comp: ec / ei,
            eig_comm: ex / ei,
            precond: self.precond_s(self.profile.layer_dims.len()),
        }
    }

    /// K-FAC-lw iteration (Osawa et al. \[6\] scheme): layer-granularity
    /// placement, and per-layer preconditioned-gradient broadcasts
    /// **every iteration**.
    pub fn kfac_lw_iteration(&self, cfg: KfacRunConfig) -> StageTimes {
        let world = self.cluster.gpus;
        let n_layers = self.profile.layer_dims.len();
        let (fc, fx) = self.factor_stage_s();

        // Layer-granularity eig makespan: the owner decomposes both of a
        // layer's factors — half the work granularity of K-FAC-opt.
        let owners = assign_layers_lw(n_layers, world);
        let mut load = vec![0u64; world];
        for (li, &(da, dg)) in self.profile.layer_dims.iter().enumerate() {
            load[owners[li]] += 9 * ((da as u64).pow(3) + (dg as u64).pow(3));
        }
        let eig_makespan =
            *load.iter().max().expect("nonempty") as f64 / self.cluster.gpu.eig_flops;

        // Owners precondition only their own layers (≤ ⌈L/p⌉ of them)…
        let layers_per_rank = n_layers.div_ceil(world);
        let precond_comp = self.precond_s(layers_per_rank);
        // …then each layer's result is broadcast: the full preconditioned
        // gradient payload crosses the wire, plus a per-layer collective
        // launch/pipeline latency (L separate unfused ops).
        let per_op_latency = 150.0e-6 + world as f64 * 2.5e-6;
        let precond_comm = self.profile.grad_bytes() as f64 * self.cluster.link.beta_s_per_byte
            + n_layers as f64 * per_op_latency;

        let fi = cfg.factor_interval() as f64;
        let ei = cfg.update_freq as f64;
        StageTimes {
            fwd: self.fwd_s(),
            bwd: self.bwd_s(),
            framework: self.cluster.gpu.framework_overhead_s,
            grad_comm: self.grad_comm_s(),
            factor_comp: fc / fi,
            factor_comm: fx / fi,
            eig_comp: eig_makespan / ei,
            eig_comm: 0.0, // results stay on the owner
            precond: precond_comp + precond_comm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::ClusterSpec;
    use crate::profile::ModelProfile;
    use kfac_nn::arch::{resnet101, resnet152, resnet50};

    fn model_at(gpus: usize) -> IterationModel {
        IterationModel::new(
            ModelProfile::from_arch(&resnet50()),
            ClusterSpec::frontera(gpus),
            32,
        )
    }

    #[test]
    fn factor_comp_constant_in_gpu_count() {
        // Table V: factor Tcomp ≈ constant across 16/32/64 GPUs.
        let (c16, _) = model_at(16).factor_stage_s();
        let (c64, _) = model_at(64).factor_stage_s();
        assert!((c16 - c64).abs() < 1e-12);
    }

    #[test]
    fn factor_comp_matches_paper_anchor_and_trend() {
        // Calibration anchor: R50 @batch 32 ≈ 36.8 ms; the power law must
        // reproduce the super-linear growth (paper: 125 ms R101, 218 ms
        // R152; the law predicts within ~20%).
        let (c50, _) = model_at(16).factor_stage_s();
        assert!((c50 * 1e3 - 36.83).abs() < 0.5, "{}", c50 * 1e3);
        let c101 = IterationModel::new(
            ModelProfile::from_arch(&resnet101()),
            ClusterSpec::frontera(16),
            32,
        )
        .factor_stage_s()
        .0;
        let c152 = IterationModel::new(
            ModelProfile::from_arch(&resnet152()),
            ClusterSpec::frontera(16),
            32,
        )
        .factor_stage_s()
        .0;
        assert!((c101 * 1e3 - 125.23).abs() < 25.0, "{}", c101 * 1e3);
        assert!((c152 * 1e3 - 218.36).abs() < 45.0, "{}", c152 * 1e3);
    }

    #[test]
    fn eig_stage_magnitude_matches_table_v() {
        // Paper: R50 @16 eig comp 2256 ms. Ours must land in the same
        // ballpark (the makespan comes from the real placement).
        let (e16, _) = model_at(16).eig_stage_s(PlacementPolicy::RoundRobin);
        assert!(
            (1.2..3.5).contains(&e16),
            "eig stage {e16}s out of Table V ballpark"
        );
    }

    #[test]
    fn eig_makespan_shrinks_sublinearly() {
        let (e16, _) = model_at(16).eig_stage_s(PlacementPolicy::RoundRobin);
        let (e64, _) = model_at(64).eig_stage_s(PlacementPolicy::RoundRobin);
        assert!(e64 < e16, "more workers must not be slower");
        assert!(
            e16 / e64 < 4.0,
            "speedup {:.2} must be sublinear in 4× workers",
            e16 / e64
        );
    }

    #[test]
    fn worker_imbalance_matches_table_vi_shape() {
        let t16 = model_at(16).eig_worker_times_s(PlacementPolicy::RoundRobin);
        let t64 = model_at(64).eig_worker_times_s(PlacementPolicy::RoundRobin);
        let fastest_speedup = t16.iter().cloned().fold(f64::MAX, f64::min)
            / t64.iter().cloned().fold(f64::MAX, f64::min);
        let slowest_speedup =
            t16.iter().cloned().fold(0.0, f64::max) / t64.iter().cloned().fold(0.0, f64::max);
        assert!(
            fastest_speedup > slowest_speedup,
            "fast workers speed up more ({fastest_speedup:.2}x vs {slowest_speedup:.2}x)"
        );
        assert!(slowest_speedup < 2.5, "slowest worker barely improves");
    }

    #[test]
    fn lpt_placement_reduces_makespan() {
        let m = model_at(64);
        let (rr, _) = m.eig_stage_s(PlacementPolicy::RoundRobin);
        let (lpt, _) = m.eig_stage_s(PlacementPolicy::SizeBalanced);
        assert!(lpt <= rr);
    }

    #[test]
    fn opt_beats_lw_beats_neither_per_iteration() {
        // Fig. 7's per-iteration ordering at 64 GPUs with the paper's
        // interval (500 at 64 GPUs): opt cheapest K-FAC variant.
        let m = model_at(64);
        let cfg = KfacRunConfig::with_freq(500);
        let opt = m.kfac_opt_iteration(cfg).total();
        let lw = m.kfac_lw_iteration(cfg).total();
        let sgd = m.sgd_iteration().total();
        assert!(opt < lw, "opt {opt} must beat lw {lw}");
        assert!(sgd < opt, "per-iteration SGD is cheapest: {sgd} vs {opt}");
        // K-FAC wins overall because 55 epochs beat 90: the per-iteration
        // overhead must stay under the 90/55 budget.
        assert!(opt / sgd < 90.0 / 55.0, "opt {opt} vs sgd {sgd}");
    }

    #[test]
    fn infrequent_updates_reduce_overhead() {
        // Table III: larger interval → cheaper iterations.
        let m = model_at(64);
        let t100 = m.kfac_opt_iteration(KfacRunConfig::with_freq(100)).total();
        let t500 = m.kfac_opt_iteration(KfacRunConfig::with_freq(500)).total();
        let t1000 = m.kfac_opt_iteration(KfacRunConfig::with_freq(1000)).total();
        assert!(t100 > t500 && t500 > t1000);
    }

    #[test]
    fn deeper_model_pays_more_for_factors() {
        // Fig. 10: factor time grows super-linearly in model size.
        let p50 = IterationModel::new(
            ModelProfile::from_arch(&resnet50()),
            ClusterSpec::frontera(16),
            32,
        );
        let p152 = IterationModel::new(
            ModelProfile::from_arch(&resnet152()),
            ClusterSpec::frontera(16),
            32,
        );
        let (c50, _) = p50.factor_stage_s();
        let (c152, _) = p152.factor_stage_s();
        let flop_ratio = p152.profile.factor_flops as f64 / p50.profile.factor_flops as f64;
        assert!(
            c152 / c50 > flop_ratio,
            "time ratio {:.2} must exceed FLOP ratio {:.2} (super-linear)",
            c152 / c50,
            flop_ratio
        );
    }

    #[test]
    fn straggler_penalty_is_monotone_in_prob_and_scale() {
        let dist = |p| StragglerDist {
            prob: p,
            slowdown: 2.0,
        };
        // Factor grows with straggle probability…
        let f = |p| dist(p).expected_max_factor(64);
        assert_eq!(f(0.0), 1.0);
        assert!(f(0.01) < f(0.05) && f(0.05) < f(0.5));
        // …and with world size: more ranks, more chances the slowest
        // one straggles.
        let at = |world| dist(0.02).expected_max_factor(world);
        assert!(at(16) < at(64) && at(64) < at(256));
        assert!(at(256) <= 3.0, "bounded by 1 + slowdown");

        // Stragglers tax exactly the synchronous communication stages.
        let clean = model_at(64);
        let straggled = model_at(64).with_stragglers(dist(0.1));
        let (a, b) = (
            clean.kfac_opt_iteration(KfacRunConfig::with_freq(100)),
            straggled.kfac_opt_iteration(KfacRunConfig::with_freq(100)),
        );
        assert!(b.grad_comm > a.grad_comm);
        assert!(b.factor_comm > a.factor_comm);
        assert!(b.eig_comm > a.eig_comm);
        assert_eq!(a.fwd, b.fwd);
        assert_eq!(a.bwd, b.bwd);
        assert_eq!(a.factor_comp, b.factor_comp);
        assert_eq!(a.eig_comp, b.eig_comp);
        assert!(b.total() > a.total());
    }
}
