//! Synthetic span emission — the simulator's timeline through the same
//! telemetry API the runnable trainer uses.
//!
//! The analytic model prices stages ([`IterationModel`]); this module
//! *schedules* them: per-rank cursors advance through forward, backward,
//! and the K-FAC stages on their real update intervals, collectives
//! rendezvous at the slowest participant, and every stage lands in the
//! shared [`Registry`] as a [`SpanEvent`]. `xp --trace-out` then renders
//! simulated 64-GPU timelines and measured CPU runs into one Chrome
//! trace with identical tooling — Table VI's eigendecomposition
//! imbalance is directly visible as ragged `sim/eig_comp` bars.

use crate::iteration::{IterationModel, KfacRunConfig};
use kfac_telemetry::{AttrValue, Registry, SpanEvent};

/// Per-rank emission state: a time cursor plus a sequence counter.
struct RankCursor {
    /// Current time, microseconds since the synthetic origin.
    now_us: u64,
    /// Next sequence number (orders ties in the exporter).
    seq: u64,
    /// Events buffered for this rank.
    events: Vec<SpanEvent>,
}

impl RankCursor {
    fn new(rank_origin_us: u64) -> Self {
        RankCursor {
            now_us: rank_origin_us,
            seq: 0,
            events: Vec::new(),
        }
    }

    /// Append a span starting at the cursor and advance it.
    fn emit(
        &mut self,
        name: &'static str,
        rank: usize,
        depth: u32,
        dur_us: u64,
        attrs: Vec<(&'static str, AttrValue)>,
    ) {
        self.events.push(SpanEvent {
            name,
            rank,
            depth,
            seq: self.seq,
            start_us: self.now_us,
            dur_us,
            attrs,
        });
        self.seq += 1;
        self.now_us += dur_us;
    }
}

fn us(seconds: f64) -> u64 {
    (seconds.max(0.0) * 1e6).round() as u64
}

/// Emit a synthetic K-FAC-opt timeline for `iterations` iterations into
/// `registry`, one thread lane per simulated rank. Returns the simulated
/// wall time in seconds (the slowest rank's finish).
///
/// The schedule follows Algorithm 1 on its real intervals: factor
/// updates every [`KfacRunConfig::factor_interval`] iterations,
/// eigendecompositions every `update_freq` iterations (both fire on
/// iteration 0, like the runnable preconditioner). Collectives are
/// rendezvous points — every rank's collective span starts at the
/// slowest rank's arrival — so eigendecomposition imbalance from the
/// real placement code shows up as idle gaps before `sim/eig_comm`.
pub fn emit_kfac_opt_trace(
    registry: &Registry,
    model: &IterationModel,
    cfg: KfacRunConfig,
    iterations: usize,
) -> f64 {
    let world = model.cluster.gpus;
    let times = model.kfac_opt_iteration(cfg);
    let (factor_comp_s, factor_comm_s) = model.factor_stage_s();
    let (_, eig_comm_s) = model.eig_stage_s(cfg.placement);
    let eig_workers = model.eig_worker_times_s(cfg.placement);

    let mut ranks: Vec<RankCursor> = (0..world).map(|_| RankCursor::new(0)).collect();

    // Rendezvous: align every cursor at the slowest rank, then run the
    // collective for `dur_us` on all of them.
    let sync_emit = |ranks: &mut Vec<RankCursor>,
                     name: &'static str,
                     dur_us: u64,
                     bytes: u64,
                     class: &'static str| {
        let barrier = ranks.iter().map(|r| r.now_us).max().unwrap_or(0);
        for (rank, rc) in ranks.iter_mut().enumerate() {
            rc.now_us = barrier;
            rc.emit(
                name,
                rank,
                1,
                dur_us,
                vec![("bytes", bytes.into()), ("class", class.into())],
            );
        }
    };

    for iter in 0..iterations {
        let iter_starts: Vec<u64> = ranks.iter().map(|r| r.now_us).collect();
        let factor_iter = iter % cfg.factor_interval() == 0;
        let eig_iter = iter % cfg.update_freq == 0;

        for (rank, rc) in ranks.iter_mut().enumerate() {
            rc.emit("sim/forward", rank, 1, us(times.fwd), Vec::new());
            rc.emit("sim/backward", rank, 1, us(times.bwd), Vec::new());
        }
        sync_emit(
            &mut ranks,
            "sim/grad_allreduce",
            us(times.grad_comm),
            model.profile.grad_bytes(),
            "gradient",
        );
        if factor_iter {
            for (rank, rc) in ranks.iter_mut().enumerate() {
                rc.emit("sim/factor_comp", rank, 1, us(factor_comp_s), Vec::new());
            }
            sync_emit(
                &mut ranks,
                "sim/factor_comm",
                us(factor_comm_s),
                model.profile.factor_bytes(),
                "factor",
            );
        }
        if eig_iter {
            // Per-rank imbalance from the real placement: ragged bars.
            for (rank, rc) in ranks.iter_mut().enumerate() {
                rc.emit(
                    "sim/eig_comp",
                    rank,
                    1,
                    us(eig_workers[rank]),
                    vec![("factors", 0u64.into())],
                );
            }
            sync_emit(
                &mut ranks,
                "sim/eig_comm",
                us(eig_comm_s),
                model.profile.eig_bytes(),
                "eigen",
            );
        }
        for (rank, rc) in ranks.iter_mut().enumerate() {
            rc.emit("sim/precond", rank, 1, us(times.precond), Vec::new());
            rc.emit("sim/opt_step", rank, 1, us(times.framework), Vec::new());
        }

        // Enclosing iteration span per rank, emitted after its children
        // so the duration is known; seq 0..children keeps exporter order
        // stable (ties broken by seq, and the parent starts earliest).
        for (rank, rc) in ranks.iter_mut().enumerate() {
            let start = iter_starts[rank];
            let seq = rc.seq;
            rc.events.push(SpanEvent {
                name: "sim/iteration",
                rank,
                depth: 0,
                seq,
                start_us: start,
                dur_us: rc.now_us.saturating_sub(start),
                attrs: vec![
                    ("iter", (iter as u64).into()),
                    ("factor_update", u64::from(factor_iter).into()),
                    ("eig_update", u64::from(eig_iter).into()),
                ],
            });
            rc.seq += 1;
        }
    }

    let wall_us = ranks.iter().map(|r| r.now_us).max().unwrap_or(0);
    for rc in ranks {
        for ev in rc.events {
            registry.record_raw(ev);
        }
    }
    wall_us as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::ClusterSpec;
    use crate::profile::ModelProfile;
    use kfac_nn::arch::resnet50;

    fn model_at(gpus: usize) -> IterationModel {
        IterationModel::new(
            ModelProfile::from_arch(&resnet50()),
            ClusterSpec::frontera(gpus),
            32,
        )
    }

    #[test]
    fn trace_covers_every_rank_and_iteration() {
        let registry = Registry::new();
        let model = model_at(8);
        let wall = emit_kfac_opt_trace(&registry, &model, KfacRunConfig::with_freq(4), 6);
        assert!(wall > 0.0);

        let events = registry.events();
        let iters: Vec<_> = events
            .iter()
            .filter(|e| e.name == "sim/iteration")
            .collect();
        assert_eq!(iters.len(), 8 * 6, "one iteration span per rank");
        for rank in 0..8 {
            let n = events.iter().filter(|e| e.rank == rank).count();
            assert!(n > 6, "rank {rank} has a full timeline, got {n} events");
        }
        // Eig fires on iterations 0 and 4 only.
        let eigs = events.iter().filter(|e| e.name == "sim/eig_comp").count();
        assert_eq!(eigs, 8 * 2);
    }

    #[test]
    fn collectives_rendezvous_at_slowest_rank() {
        let registry = Registry::new();
        let model = model_at(8);
        emit_kfac_opt_trace(&registry, &model, KfacRunConfig::with_freq(1), 1);
        let events = registry.events();
        // All ranks' eig_comm spans start at the same microsecond, at or
        // after every rank's eig_comp end (the barrier).
        let comm_starts: Vec<u64> = events
            .iter()
            .filter(|e| e.name == "sim/eig_comm")
            .map(|e| e.start_us)
            .collect();
        assert_eq!(comm_starts.len(), 8);
        assert!(comm_starts.iter().all(|&s| s == comm_starts[0]));
        let max_comp_end = events
            .iter()
            .filter(|e| e.name == "sim/eig_comp")
            .map(|e| e.end_us())
            .max()
            .unwrap();
        assert_eq!(comm_starts[0], max_comp_end);
    }

    #[test]
    fn eig_imbalance_is_visible_in_span_durations() {
        let registry = Registry::new();
        let model = model_at(16);
        emit_kfac_opt_trace(&registry, &model, KfacRunConfig::with_freq(1), 1);
        let durs: Vec<u64> = registry
            .events()
            .iter()
            .filter(|e| e.name == "sim/eig_comp")
            .map(|e| e.dur_us)
            .collect();
        let (min, max) = (durs.iter().min().unwrap(), durs.iter().max().unwrap());
        assert!(max > min, "Table VI imbalance must show up in the trace");
    }

    #[test]
    fn children_are_contained_in_iteration_spans() {
        let registry = Registry::new();
        let model = model_at(4);
        emit_kfac_opt_trace(&registry, &model, KfacRunConfig::with_freq(2), 3);
        let events = registry.events();
        for rank in 0..4 {
            let parents: Vec<_> = events
                .iter()
                .filter(|e| e.rank == rank && e.depth == 0)
                .collect();
            for child in events.iter().filter(|e| e.rank == rank && e.depth == 1) {
                assert!(
                    parents
                        .iter()
                        .any(|p| p.start_us <= child.start_us && child.end_us() <= p.end_us()),
                    "child {} at {} not contained in any iteration",
                    child.name,
                    child.start_us
                );
            }
        }
    }
}
