//! Synthetic span emission — the simulator's timeline through the same
//! telemetry API the runnable trainer uses.
//!
//! The analytic model prices stages ([`IterationModel`]); this module
//! *schedules* them: per-rank cursors advance through forward, backward,
//! and the K-FAC stages on their real update intervals, collectives
//! rendezvous at the slowest participant, and every stage lands in the
//! shared [`Registry`] as a [`SpanEvent`]. `xp --trace-out` then renders
//! simulated 64-GPU timelines and measured CPU runs into one Chrome
//! trace with identical tooling — Table VI's eigendecomposition
//! imbalance is directly visible as ragged `sim/eig_comp` bars.

use crate::iteration::{IterationModel, KfacRunConfig};
use kfac_telemetry::{AttrValue, Registry, SpanEvent};

/// Per-rank emission state: a time cursor plus a sequence counter.
struct RankCursor {
    /// Current time, microseconds since the synthetic origin.
    now_us: u64,
    /// Next sequence number (orders ties in the exporter).
    seq: u64,
    /// Worker lane tag stamped on every emitted span (`None` = main).
    lane: Option<&'static str>,
    /// Events buffered for this rank.
    events: Vec<SpanEvent>,
}

impl RankCursor {
    fn new(rank_origin_us: u64) -> Self {
        RankCursor {
            now_us: rank_origin_us,
            seq: 0,
            lane: None,
            events: Vec::new(),
        }
    }

    fn new_lane(rank_origin_us: u64, lane: &'static str) -> Self {
        RankCursor {
            lane: Some(lane),
            ..RankCursor::new(rank_origin_us)
        }
    }

    /// Append a span starting at the cursor and advance it.
    fn emit(
        &mut self,
        name: &'static str,
        rank: usize,
        depth: u32,
        dur_us: u64,
        attrs: Vec<(&'static str, AttrValue)>,
    ) {
        self.events.push(SpanEvent {
            name,
            rank,
            lane: self.lane,
            depth,
            seq: self.seq,
            start_us: self.now_us,
            dur_us,
            attrs,
        });
        self.seq += 1;
        self.now_us += dur_us;
    }
}

fn us(seconds: f64) -> u64 {
    (seconds.max(0.0) * 1e6).round() as u64
}

/// Emit a synthetic K-FAC-opt timeline for `iterations` iterations into
/// `registry`, one thread lane per simulated rank. Returns the simulated
/// wall time in seconds (the slowest rank's finish).
///
/// The schedule follows Algorithm 1 on its real intervals: factor
/// updates every [`KfacRunConfig::factor_interval`] iterations,
/// eigendecompositions every `update_freq` iterations (both fire on
/// iteration 0, like the runnable preconditioner). Collectives are
/// rendezvous points — every rank's collective span starts at the
/// slowest rank's arrival — so eigendecomposition imbalance from the
/// real placement code shows up as idle gaps before `sim/eig_comm`.
pub fn emit_kfac_opt_trace(
    registry: &Registry,
    model: &IterationModel,
    cfg: KfacRunConfig,
    iterations: usize,
) -> f64 {
    let world = model.cluster.gpus;
    let times = model.kfac_opt_iteration(cfg);
    let (factor_comp_s, factor_comm_s) = model.factor_stage_s();
    let (_, eig_comm_s) = model.eig_stage_s(cfg.placement);
    let eig_workers = model.eig_worker_times_s(cfg.placement);

    let mut ranks: Vec<RankCursor> = (0..world).map(|_| RankCursor::new(0)).collect();

    // Rendezvous: align every cursor at the slowest rank, then run the
    // collective for `dur_us` on all of them.
    let sync_emit = |ranks: &mut Vec<RankCursor>,
                     name: &'static str,
                     dur_us: u64,
                     bytes: u64,
                     class: &'static str| {
        let barrier = ranks.iter().map(|r| r.now_us).max().unwrap_or(0);
        for (rank, rc) in ranks.iter_mut().enumerate() {
            rc.now_us = barrier;
            rc.emit(
                name,
                rank,
                1,
                dur_us,
                vec![("bytes", bytes.into()), ("class", class.into())],
            );
        }
    };

    for iter in 0..iterations {
        let iter_starts: Vec<u64> = ranks.iter().map(|r| r.now_us).collect();
        let factor_iter = iter % cfg.factor_interval() == 0;
        let eig_iter = iter % cfg.update_freq == 0;

        for (rank, rc) in ranks.iter_mut().enumerate() {
            rc.emit("sim/forward", rank, 1, us(times.fwd), Vec::new());
            rc.emit("sim/backward", rank, 1, us(times.bwd), Vec::new());
        }
        sync_emit(
            &mut ranks,
            "sim/grad_allreduce",
            us(times.grad_comm),
            model.profile.grad_bytes(),
            "gradient",
        );
        if factor_iter {
            for (rank, rc) in ranks.iter_mut().enumerate() {
                rc.emit("sim/factor_comp", rank, 1, us(factor_comp_s), Vec::new());
            }
            sync_emit(
                &mut ranks,
                "sim/factor_comm",
                us(factor_comm_s),
                model.profile.factor_bytes(),
                "factor",
            );
        }
        if eig_iter {
            // Per-rank imbalance from the real placement: ragged bars.
            for (rank, rc) in ranks.iter_mut().enumerate() {
                rc.emit(
                    "sim/eig_comp",
                    rank,
                    1,
                    us(eig_workers[rank]),
                    vec![("factors", 0u64.into())],
                );
            }
            sync_emit(
                &mut ranks,
                "sim/eig_comm",
                us(eig_comm_s),
                model.profile.eig_bytes(),
                "eigen",
            );
        }
        for (rank, rc) in ranks.iter_mut().enumerate() {
            rc.emit("sim/precond", rank, 1, us(times.precond), Vec::new());
            rc.emit("sim/opt_step", rank, 1, us(times.framework), Vec::new());
        }

        // Enclosing iteration span per rank, emitted after its children
        // so the duration is known; seq 0..children keeps exporter order
        // stable (ties broken by seq, and the parent starts earliest).
        for (rank, rc) in ranks.iter_mut().enumerate() {
            let start = iter_starts[rank];
            let seq = rc.seq;
            rc.events.push(SpanEvent {
                name: "sim/iteration",
                rank,
                lane: rc.lane,
                depth: 0,
                seq,
                start_us: start,
                dur_us: rc.now_us.saturating_sub(start),
                attrs: vec![
                    ("iter", (iter as u64).into()),
                    ("factor_update", u64::from(factor_iter).into()),
                    ("eig_update", u64::from(eig_iter).into()),
                ],
            });
            rc.seq += 1;
        }
    }

    let wall_us = ranks.iter().map(|r| r.now_us).max().unwrap_or(0);
    for rc in ranks {
        for ev in rc.events {
            registry.record_raw(ev);
        }
    }
    wall_us as f64 / 1e6
}

/// Emit the overlapped (task-graph) variant of the K-FAC-opt timeline
/// into `registry`: each rank gets a compute lane plus a `comm` lane,
/// backward is split into `buckets` chunks whose gradient allreduces
/// start as soon as the chunk finishes, factor computation overlaps the
/// gradient traffic, and factor allreduces overlap preconditioning on
/// non-eigendecomposition iterations — the schedule the `kfac-exec`
/// runtime realises on real hardware. Returns the simulated wall time
/// in seconds (the slowest lane's finish).
pub fn emit_kfac_opt_overlap_trace(
    registry: &Registry,
    model: &IterationModel,
    cfg: KfacRunConfig,
    iterations: usize,
    buckets: usize,
) -> f64 {
    let world = model.cluster.gpus;
    let buckets = buckets.max(1);
    let times = model.kfac_opt_iteration(cfg);
    let (factor_comp_s, factor_comm_s) = model.factor_stage_s();
    let (_, eig_comm_s) = model.eig_stage_s(cfg.placement);
    let eig_workers = model.eig_worker_times_s(cfg.placement);

    let mut comp: Vec<RankCursor> = (0..world).map(|_| RankCursor::new(0)).collect();
    let mut comm: Vec<RankCursor> = (0..world)
        .map(|_| RankCursor::new_lane(0, "comm"))
        .collect();

    // A collective on the comm lanes: every rank's comm worker picks the
    // op up once its own lane is free AND the rank's input is ready; the
    // collective itself starts when the last rank arrives.
    let sync_comm = |comm: &mut Vec<RankCursor>,
                     ready: &[u64],
                     name: &'static str,
                     dur_us: u64,
                     bytes: u64,
                     class: &'static str,
                     bucket: Option<u64>| {
        let barrier = comm
            .iter()
            .zip(ready)
            .map(|(c, &r)| c.now_us.max(r))
            .max()
            .unwrap_or(0);
        for (rank, cc) in comm.iter_mut().enumerate() {
            cc.now_us = barrier;
            let mut attrs = vec![("bytes", bytes.into()), ("class", class.into())];
            if let Some(b) = bucket {
                attrs.push(("bucket", b.into()));
            }
            cc.emit(name, rank, 0, dur_us, attrs);
        }
    };

    for iter in 0..iterations {
        let iter_starts: Vec<u64> = comp.iter().map(|r| r.now_us).collect();
        let factor_iter = iter % cfg.factor_interval() == 0;
        let eig_iter = iter % cfg.update_freq == 0;

        for (rank, rc) in comp.iter_mut().enumerate() {
            rc.emit("sim/forward", rank, 1, us(times.fwd), Vec::new());
        }

        // Backward in bucket-sized chunks; each chunk's gradient bucket
        // goes out on the comm lane while later chunks keep computing.
        let chunk_us = us(times.bwd / buckets as f64);
        let grad_chunk_us = us(times.grad_comm / buckets as f64);
        let grad_chunk_bytes = model.profile.grad_bytes() / buckets as u64;
        let mut grad_done = vec![0u64; world];
        for c in 0..buckets {
            let mut ready = vec![0u64; world];
            for (rank, rc) in comp.iter_mut().enumerate() {
                rc.emit(
                    "sim/backward",
                    rank,
                    1,
                    chunk_us,
                    vec![("bucket", (c as u64).into())],
                );
                ready[rank] = rc.now_us;
            }
            sync_comm(
                &mut comm,
                &ready,
                "sim/grad_allreduce",
                grad_chunk_us,
                grad_chunk_bytes,
                "gradient",
                Some(c as u64),
            );
            for (rank, cc) in comm.iter().enumerate() {
                grad_done[rank] = cc.now_us;
            }
        }

        // Factor work overlaps the gradient traffic still in flight.
        let mut factor_done = vec![0u64; world];
        if factor_iter {
            let mut ready = vec![0u64; world];
            for (rank, rc) in comp.iter_mut().enumerate() {
                rc.emit("sim/factor_comp", rank, 1, us(factor_comp_s), Vec::new());
                ready[rank] = rc.now_us;
            }
            sync_comm(
                &mut comm,
                &ready,
                "sim/factor_comm",
                us(factor_comm_s),
                model.profile.factor_bytes(),
                "factor",
                None,
            );
            for (rank, cc) in comm.iter().enumerate() {
                factor_done[rank] = cc.now_us;
            }
        }

        // Eigendecomposition needs the averaged factors, so it waits for
        // the factor allreduce; its allgather then rides the comm lane.
        let mut eig_done = vec![0u64; world];
        if eig_iter {
            let mut ready = vec![0u64; world];
            for (rank, rc) in comp.iter_mut().enumerate() {
                if factor_iter {
                    rc.now_us = rc.now_us.max(factor_done[rank]);
                }
                rc.emit(
                    "sim/eig_comp",
                    rank,
                    1,
                    us(eig_workers[rank]),
                    vec![("factors", 0u64.into())],
                );
                ready[rank] = rc.now_us;
            }
            sync_comm(
                &mut comm,
                &ready,
                "sim/eig_comm",
                us(eig_comm_s),
                model.profile.eig_bytes(),
                "eigen",
                None,
            );
            for (rank, cc) in comm.iter().enumerate() {
                eig_done[rank] = cc.now_us;
            }
        }

        // Preconditioning needs the gradients (and fresh eigenbases on
        // eig iterations) but NOT the factor allreduce, which may still
        // be in flight on factor-only iterations.
        for (rank, rc) in comp.iter_mut().enumerate() {
            rc.now_us = rc.now_us.max(grad_done[rank]).max(eig_done[rank]);
            rc.emit("sim/precond", rank, 1, us(times.precond), Vec::new());
            rc.emit("sim/opt_step", rank, 1, us(times.framework), Vec::new());
        }

        for (rank, rc) in comp.iter_mut().enumerate() {
            let start = iter_starts[rank];
            let seq = rc.seq;
            rc.events.push(SpanEvent {
                name: "sim/iteration",
                rank,
                lane: rc.lane,
                depth: 0,
                seq,
                start_us: start,
                dur_us: rc.now_us.saturating_sub(start),
                attrs: vec![
                    ("iter", (iter as u64).into()),
                    ("factor_update", u64::from(factor_iter).into()),
                    ("eig_update", u64::from(eig_iter).into()),
                ],
            });
            rc.seq += 1;
        }
    }

    let wall_us = comp
        .iter()
        .chain(comm.iter())
        .map(|r| r.now_us)
        .max()
        .unwrap_or(0);
    for rc in comp.into_iter().chain(comm) {
        for ev in rc.events {
            registry.record_raw(ev);
        }
    }
    wall_us as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::ClusterSpec;
    use crate::profile::ModelProfile;
    use kfac_nn::arch::resnet50;

    fn model_at(gpus: usize) -> IterationModel {
        IterationModel::new(
            ModelProfile::from_arch(&resnet50()),
            ClusterSpec::frontera(gpus),
            32,
        )
    }

    #[test]
    fn trace_covers_every_rank_and_iteration() {
        let registry = Registry::new();
        let model = model_at(8);
        let wall = emit_kfac_opt_trace(&registry, &model, KfacRunConfig::with_freq(4), 6);
        assert!(wall > 0.0);

        let events = registry.events();
        let iters: Vec<_> = events
            .iter()
            .filter(|e| e.name == "sim/iteration")
            .collect();
        assert_eq!(iters.len(), 8 * 6, "one iteration span per rank");
        for rank in 0..8 {
            let n = events.iter().filter(|e| e.rank == rank).count();
            assert!(n > 6, "rank {rank} has a full timeline, got {n} events");
        }
        // Eig fires on iterations 0 and 4 only.
        let eigs = events.iter().filter(|e| e.name == "sim/eig_comp").count();
        assert_eq!(eigs, 8 * 2);
    }

    #[test]
    fn collectives_rendezvous_at_slowest_rank() {
        let registry = Registry::new();
        let model = model_at(8);
        emit_kfac_opt_trace(&registry, &model, KfacRunConfig::with_freq(1), 1);
        let events = registry.events();
        // All ranks' eig_comm spans start at the same microsecond, at or
        // after every rank's eig_comp end (the barrier).
        let comm_starts: Vec<u64> = events
            .iter()
            .filter(|e| e.name == "sim/eig_comm")
            .map(|e| e.start_us)
            .collect();
        assert_eq!(comm_starts.len(), 8);
        assert!(comm_starts.iter().all(|&s| s == comm_starts[0]));
        let max_comp_end = events
            .iter()
            .filter(|e| e.name == "sim/eig_comp")
            .map(|e| e.end_us())
            .max()
            .unwrap();
        assert_eq!(comm_starts[0], max_comp_end);
    }

    #[test]
    fn eig_imbalance_is_visible_in_span_durations() {
        let registry = Registry::new();
        let model = model_at(16);
        emit_kfac_opt_trace(&registry, &model, KfacRunConfig::with_freq(1), 1);
        let durs: Vec<u64> = registry
            .events()
            .iter()
            .filter(|e| e.name == "sim/eig_comp")
            .map(|e| e.dur_us)
            .collect();
        let (min, max) = (durs.iter().min().unwrap(), durs.iter().max().unwrap());
        assert!(max > min, "Table VI imbalance must show up in the trace");
    }

    #[test]
    fn overlap_trace_beats_sequential_wall_time() {
        let model = model_at(8);
        let cfg = KfacRunConfig::with_freq(4);
        let seq_registry = Registry::new();
        let seq_wall = emit_kfac_opt_trace(&seq_registry, &model, cfg, 6);
        let ovl_registry = Registry::new();
        let ovl_wall = emit_kfac_opt_overlap_trace(&ovl_registry, &model, cfg, 6, 4);
        assert!(
            ovl_wall < seq_wall,
            "overlap must hide communication: {ovl_wall} >= {seq_wall}"
        );
    }

    #[test]
    fn overlap_trace_comm_rides_its_own_lane_and_overlaps_backward() {
        let registry = Registry::new();
        let model = model_at(8);
        emit_kfac_opt_overlap_trace(&registry, &model, KfacRunConfig::with_freq(4), 2, 4);
        let events = registry.events();
        let comm: Vec<_> = events
            .iter()
            .filter(|e| e.name == "sim/grad_allreduce")
            .collect();
        assert!(!comm.is_empty());
        assert!(comm.iter().all(|e| e.lane == Some("comm")));
        // At least one gradient allreduce overlaps a later backward chunk
        // of the same rank — the whole point of the bucketed schedule.
        let overlapped = comm.iter().any(|c| {
            events.iter().any(|b| {
                b.name == "sim/backward"
                    && b.rank == c.rank
                    && b.lane.is_none()
                    && b.start_us < c.end_us()
                    && c.start_us < b.end_us()
            })
        });
        assert!(overlapped, "no grad allreduce overlapped backward");
    }

    #[test]
    fn overlap_trace_respects_dependencies() {
        let registry = Registry::new();
        let model = model_at(4);
        emit_kfac_opt_overlap_trace(&registry, &model, KfacRunConfig::with_freq(1), 1, 4);
        let events = registry.events();
        for rank in 0..4 {
            // Every grad bucket's allreduce starts at or after the same
            // bucket's backward chunk ends on that rank.
            for c in events
                .iter()
                .filter(|e| e.name == "sim/grad_allreduce" && e.rank == rank)
            {
                let bucket = c.attr("bucket").cloned();
                let bwd = events
                    .iter()
                    .find(|b| {
                        b.name == "sim/backward"
                            && b.rank == rank
                            && b.attr("bucket").cloned() == bucket
                    })
                    .expect("matching backward chunk");
                assert!(bwd.end_us() <= c.start_us);
            }
            // Preconditioning waits for the last gradient bucket.
            let last_grad = events
                .iter()
                .filter(|e| e.name == "sim/grad_allreduce" && e.rank == rank)
                .map(|e| e.end_us())
                .max()
                .unwrap();
            let precond = events
                .iter()
                .find(|e| e.name == "sim/precond" && e.rank == rank)
                .unwrap();
            assert!(last_grad <= precond.start_us);
        }
    }

    #[test]
    fn children_are_contained_in_iteration_spans() {
        let registry = Registry::new();
        let model = model_at(4);
        emit_kfac_opt_trace(&registry, &model, KfacRunConfig::with_freq(2), 3);
        let events = registry.events();
        for rank in 0..4 {
            let parents: Vec<_> = events
                .iter()
                .filter(|e| e.rank == rank && e.depth == 0)
                .collect();
            for child in events.iter().filter(|e| e.rank == rank && e.depth == 1) {
                assert!(
                    parents
                        .iter()
                        .any(|p| p.start_us <= child.start_us && child.end_us() <= p.end_us()),
                    "child {} at {} not contained in any iteration",
                    child.name,
                    child.start_us
                );
            }
        }
    }
}
