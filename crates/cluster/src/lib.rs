//! # kfac-cluster
//!
//! Calibrated analytic cluster simulator for the `kfac-rs` reproduction of
//! *Convolutional Neural Network Training with Distributed K-FAC*
//! (Pauloski et al., SC 2020).
//!
//! The paper's scaling experiments (Figures 7–10, Tables III–VI) ran on
//! 16–256 V100 GPUs. No GPUs exist here, so — per the substitution policy
//! in DESIGN.md — those experiments are reproduced with an analytic model
//! built from three verifiable ingredients:
//!
//! 1. **Real layer dimensions**: the full-size ResNet-50/101/152 factor
//!    inventories from [`kfac_nn::arch`] (validated against published
//!    parameter counts), which determine eigendecomposition cost and
//!    placement imbalance.
//! 2. **Real placement code**: the same `kfac::distribution` assignment
//!    functions the runnable preconditioner uses, so per-worker loads are
//!    the genuine article, not a model of one.
//! 3. **Standard collective cost models**: the bandwidth-optimal ring
//!    allreduce the paper itself cites ([35]), priced with α/β link
//!    parameters.
//!
//! Absolute times depend on documented V100-class rate constants
//! ([`hardware::GpuSpec::v100`]); the *shapes* — who wins, where the
//! crossovers fall, how imbalance grows — come from (1)–(3).

pub mod calibrate;
pub mod hardware;
pub mod iteration;
pub mod profile;
pub mod scaling;
pub mod trace;

pub use calibrate::{
    calibrated_cluster, scaling_sweep_calibrated, time_to_solution_calibrated, BenchReport,
};
pub use hardware::{calibrate_host, ClusterSpec, GpuSpec};
pub use iteration::{IterationModel, KfacRunConfig, StageTimes, StragglerDist};
pub use profile::ModelProfile;
pub use scaling::{
    crossover_scale, efficiency, paper_update_freq, scaling_sweep, time_to_solution, ScalingPoint,
    TrainingBudget,
};
pub use trace::{emit_kfac_opt_overlap_trace, emit_kfac_opt_trace};
