//! Hardware parameters for the analytic cluster model.
//!
//! The paper's testbed is the Frontera GPU subsystem: 4 × V100 per node,
//! InfiniBand EDR shared per node (§VI-A). No GPUs exist here, so the
//! simulator is **calibrated against the paper's own published
//! measurements** at a single anchor point — ResNet-50 on 16–64 GPUs
//! (Table III iteration times, Table V stage profiles) — and everything
//! else (other models, other scales, other strategies) is prediction:
//!
//! * `gemm_flops` reproduces Table III's SGD iteration times together
//!   with `framework_overhead_s` (data loading, BatchNorm, launch
//!   overhead — the fixed cost that makes deeper ResNets sub-linearly
//!   slower in the paper's own numbers).
//! * `eig_flops` reproduces Table V's eigendecomposition stage (~2.26 s
//!   for ResNet-50 @16 GPUs) given the real factor inventory and the
//!   real round-robin placement.
//! * the interconnect β reproduces Table V's factor/eig communication
//!   rows (effective ~6.5 GB/s per rank — EDR shared across 4 GPUs).
//! * `factor_anchor_s`/`factor_exponent` encode the paper's measured
//!   factor-computation times (36.8 → 125 → 218 ms for ResNet-50/101/152,
//!   Table V & Fig. 10): a power law in total factor FLOPs with exponent
//!   1.754 fits all three within 18% — the super-linear growth §VI-C4
//!   attributes to the increasingly memory-bound patch extraction.
//! * `precond_anchor_s`/`precond_exponent` encode the per-iteration
//!   preconditioning overhead implied by Table III's K-FAC vs SGD
//!   iteration-time residuals after removing the amortized Table V
//!   stages (24 → 71 → 157 ms for ResNet-50/101/152): a power law in
//!   K-FAC layer count with exponent 1.85 — per-layer kernel-launch
//!   serialization compounding with depth.

use kfac_collectives::LinkSpec;

/// Per-GPU rates and calibrated overhead laws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Sustained FP32 GEMM throughput for conv/linear forward/backward,
    /// FLOP/s.
    pub gemm_flops: f64,
    /// Effective throughput for dense symmetric eigendecomposition
    /// (9·n³ convention), FLOP/s.
    pub eig_flops: f64,
    /// Fixed per-iteration framework cost (I/O, BatchNorm, launches), s.
    pub framework_overhead_s: f64,
    /// Factor-computation time for the ResNet-50 anchor at per-GPU
    /// batch 32, seconds.
    pub factor_anchor_s: f64,
    /// Power-law exponent of factor time in total factor FLOPs.
    pub factor_exponent: f64,
    /// Preconditioning time for the ResNet-50 anchor (54 K-FAC layers),
    /// seconds per iteration.
    pub precond_anchor_s: f64,
    /// Power-law exponent of preconditioning time in K-FAC layer count.
    pub precond_exponent: f64,
}

impl GpuSpec {
    /// V100 constants calibrated to the paper (see module docs).
    pub fn v100() -> Self {
        GpuSpec {
            gemm_flops: 9.0e12,
            eig_flops: 0.55e12,
            framework_overhead_s: 0.050,
            factor_anchor_s: 0.03683,
            factor_exponent: 1.754,
            precond_anchor_s: 0.024,
            precond_exponent: 1.85,
        }
    }
}

/// A homogeneous GPU cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Total GPU count (the paper sweeps 16–256).
    pub gpus: usize,
    /// Interconnect α/β parameters (per-rank effective).
    pub link: LinkSpec,
    /// Per-GPU rates.
    pub gpu: GpuSpec,
}

impl ClusterSpec {
    /// Frontera-like cluster: V100 rates, EDR InfiniBand shared by the
    /// 4 GPUs of a node → ~6.5 GB/s effective per-rank bandwidth
    /// (calibrated to Table V's communication rows).
    pub fn frontera(gpus: usize) -> Self {
        ClusterSpec {
            gpus,
            link: LinkSpec {
                alpha_s: 5.0e-6,
                beta_s_per_byte: 1.0 / 6.5e9,
            },
            gpu: GpuSpec::v100(),
        }
    }
}

/// Measure this host's actual kernel rates so simulator constants can be
/// anchored to local reality (used by the calibration bench; the default
/// experiments use [`GpuSpec::v100`] so results are machine-independent).
/// Host anchors use exponent 1.0 (pure FLOP proportionality) since the
/// paper's memory-hierarchy effects are GPU-specific.
pub fn calibrate_host() -> GpuSpec {
    use kfac_tensor::{eigh, Matrix, Rng64};
    use std::time::Instant;

    let mut rng = Rng64::new(1);

    // GEMM rate: 256×256×256 product.
    let n = 256;
    let a = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.normal_f32()).collect());
    let b = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.normal_f32()).collect());
    let t0 = Instant::now();
    let reps = 4;
    for _ in 0..reps {
        std::hint::black_box(a.matmul(&b));
    }
    let gemm = (reps * 2 * n * n * n) as f64 / t0.elapsed().as_secs_f64();

    // Gram rate (factor computation pattern): 2048×128 → 128×128.
    let rows = 2048;
    let cols = 128;
    let x = Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.normal_f32()).collect(),
    );
    let t1 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(x.gram());
    }
    let gram = (reps * rows * cols * cols) as f64 / t1.elapsed().as_secs_f64();

    // Eig rate: 96×96 symmetric eigendecomposition (9n³ convention).
    let m = 96;
    let mut s = x.gram();
    s.scale(1.0 / rows as f32);
    let small = {
        let mut t = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                t[(i, j)] = s[(i, j)];
            }
        }
        t
    };
    let t2 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(eigh(&small).expect("calibration eig"));
    }
    let eig = (reps * 9 * m * m * m) as f64 / t2.elapsed().as_secs_f64();

    // Express the anchors through the measured rates and the ResNet-50
    // reference workload.
    let (r50_factor_flops, _r50_layers) = crate::profile::resnet50_reference();
    GpuSpec {
        gemm_flops: gemm,
        eig_flops: eig,
        framework_overhead_s: 0.0,
        factor_anchor_s: 32.0 * r50_factor_flops / gram,
        factor_exponent: 1.0,
        precond_anchor_s: crate::profile::resnet50_precond_flops() / gemm,
        precond_exponent: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_rate_ordering() {
        let g = GpuSpec::v100();
        assert!(g.gemm_flops > g.eig_flops);
        assert!(g.factor_exponent > 1.0, "super-linear factor growth");
        assert!(g.precond_exponent > 1.0, "super-linear precond growth");
    }

    #[test]
    fn frontera_preset() {
        let c = ClusterSpec::frontera(64);
        assert_eq!(c.gpus, 64);
        assert!(c.link.alpha_s > 0.0);
        // Effective bandwidth between 1 and 12.5 GB/s (shared EDR).
        let bw = 1.0 / c.link.beta_s_per_byte;
        assert!(bw > 1e9 && bw < 12.5e9);
    }

    #[test]
    fn host_calibration_produces_sane_rates() {
        let g = calibrate_host();
        for rate in [g.gemm_flops, g.eig_flops] {
            assert!(rate > 1e7 && rate < 1e13, "rate {rate}");
        }
        assert!(g.factor_anchor_s > 0.0 && g.precond_anchor_s > 0.0);
    }
}
