//! Model profiles: everything the iteration model needs, extracted from
//! the full-size architecture tables of [`kfac_nn::arch`].

use kfac::distribution::{factor_descs, FactorDesc};
use kfac_nn::arch::ModelArch;

/// Cost-model view of one model.
#[derive(Debug, Clone)]
pub struct ModelProfile {
    /// Model name for reports.
    pub name: String,
    /// Total trainable parameters (gradient-allreduce payload).
    pub params: usize,
    /// Per-example forward FLOPs.
    pub fwd_flops: u64,
    /// Per-example factor-accumulation FLOPs (Algorithm 1 line 6).
    pub factor_flops: u64,
    /// K-FAC factor inventory (dims per layer, A and G interleaved).
    pub factors: Vec<FactorDesc>,
    /// Per-layer `(dim_A, dim_G)`.
    pub layer_dims: Vec<(usize, usize)>,
}

impl ModelProfile {
    /// Build from an architecture description.
    pub fn from_arch(arch: &ModelArch) -> Self {
        let layer_dims: Vec<(usize, usize)> = arch.layers.iter().map(|l| l.factor_dims()).collect();
        ModelProfile {
            name: arch.name.clone(),
            params: arch.total_params(),
            fwd_flops: arch.fwd_flops(),
            factor_flops: arch.factor_flops(),
            factors: factor_descs(&layer_dims),
            layer_dims,
        }
    }

    /// Bytes of one full gradient exchange (FP32).
    pub fn grad_bytes(&self) -> u64 {
        4 * self.params as u64
    }

    /// Bytes of one fused factor allreduce: every factor matrix, FP32.
    pub fn factor_bytes(&self) -> u64 {
        self.factors
            .iter()
            .map(|f| 4 * (f.dim * f.dim) as u64)
            .sum()
    }

    /// Bytes of one eigendecomposition allgather (eigenvalues +
    /// eigenvectors per factor, FP32).
    pub fn eig_bytes(&self) -> u64 {
        self.factors
            .iter()
            .map(|f| 4 * (f.dim + f.dim * f.dim) as u64)
            .sum()
    }

    /// Total eigendecomposition FLOPs for one full second-order update
    /// (`9 n³` per factor).
    pub fn eig_flops_total(&self) -> u64 {
        self.factors.iter().map(|f| 9 * f.eig_cost()).sum()
    }

    /// Per-example FLOPs to precondition every layer's gradient
    /// (Eq. 13–15: four GEMMs of `dG²·dA` / `dG·dA²` per layer) — not
    /// batch-dependent, but computed per iteration on every rank.
    pub fn precond_flops(&self) -> u64 {
        self.layer_dims
            .iter()
            .map(|&(da, dg)| {
                let (da, dg) = (da as u64, dg as u64);
                2 * (2 * dg * dg * da + 2 * dg * da * da)
            })
            .sum()
    }
}

/// ResNet-50 reference quantities used as calibration anchors:
/// `(per-example factor FLOPs, K-FAC layer count)`.
pub fn resnet50_reference() -> (f64, usize) {
    let arch = kfac_nn::arch::resnet50();
    (arch.factor_flops() as f64, arch.layers.len())
}

/// ResNet-50 per-iteration preconditioning FLOPs (calibration anchor).
pub fn resnet50_precond_flops() -> f64 {
    ModelProfile::from_arch(&kfac_nn::arch::resnet50()).precond_flops() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfac_nn::arch::{resnet101, resnet152, resnet50};

    #[test]
    fn resnet50_profile_spot_checks() {
        let p = ModelProfile::from_arch(&resnet50());
        assert_eq!(p.name, "ResNet-50");
        assert_eq!(p.factors.len(), 2 * 54);
        assert!(p.params > 25_000_000);
        // Factor payload is hundreds of MB — the reason it is only
        // exchanged every tens of iterations.
        assert!(p.factor_bytes() > 100 << 20, "{}", p.factor_bytes());
    }

    #[test]
    fn costs_increase_with_depth() {
        let p50 = ModelProfile::from_arch(&resnet50());
        let p101 = ModelProfile::from_arch(&resnet101());
        let p152 = ModelProfile::from_arch(&resnet152());
        assert!(p50.factor_flops < p101.factor_flops);
        assert!(p101.factor_flops < p152.factor_flops);
        assert!(p50.eig_flops_total() < p101.eig_flops_total());
        assert!(p101.eig_flops_total() < p152.eig_flops_total());
        assert!(p50.grad_bytes() < p101.grad_bytes());
    }

    #[test]
    fn eig_payload_larger_than_factor_payload() {
        // Eigen wire format carries eigenvalues on top of the square
        // matrix.
        let p = ModelProfile::from_arch(&resnet50());
        assert!(p.eig_bytes() > p.factor_bytes());
    }
}
