//! Time-to-solution projections across cluster scales — the machinery
//! behind Figures 7–9 and Tables III–IV.
//!
//! The paper's protocol (§VI-C3): per-GPU batch 32, K-FAC trains 55
//! epochs, SGD trains 90 (both reach the acceptance accuracy), and the
//! K-FAC update interval scales inversely with GPU count (2000 @16 …
//! 125 @256) so the number of second-order updates per epoch is constant.

use crate::hardware::ClusterSpec;
use crate::iteration::{IterationModel, KfacRunConfig};
use crate::profile::ModelProfile;
use kfac_nn::arch::ModelArch;

/// The paper's epoch budgets and dataset size.
#[derive(Debug, Clone, Copy)]
pub struct TrainingBudget {
    /// Training-set size (ImageNet-1k ≈ 1.28 M).
    pub dataset: usize,
    /// Epochs K-FAC needs to hit the acceptance accuracy (paper: 55).
    pub kfac_epochs: usize,
    /// Epochs SGD needs (paper: 90).
    pub sgd_epochs: usize,
    /// Per-GPU batch (paper: 32).
    pub local_batch: usize,
}

impl Default for TrainingBudget {
    fn default() -> Self {
        TrainingBudget {
            dataset: 1_281_167,
            kfac_epochs: 55,
            sgd_epochs: 90,
            local_batch: 32,
        }
    }
}

/// The paper's update-interval schedule: constant K-FAC updates per epoch
/// across scales ("we use 2000, 1000, 500, 250, 125-iteration K-FAC update
/// intervals … on 16, 32, 64, 128, 256-GPUs").
pub fn paper_update_freq(gpus: usize) -> usize {
    (2000 * 16 / gpus).max(1)
}

/// One row of a Figure 7/8/9 series.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// GPU count.
    pub gpus: usize,
    /// SGD time-to-solution, seconds.
    pub sgd_s: f64,
    /// K-FAC-lw time-to-solution, seconds.
    pub lw_s: f64,
    /// K-FAC-opt time-to-solution, seconds.
    pub opt_s: f64,
}

impl ScalingPoint {
    /// K-FAC-opt improvement over SGD (Table IV): positive = faster.
    pub fn opt_improvement(&self) -> f64 {
        (self.sgd_s - self.opt_s) / self.sgd_s
    }

    /// K-FAC-lw improvement over SGD.
    pub fn lw_improvement(&self) -> f64 {
        (self.sgd_s - self.lw_s) / self.sgd_s
    }
}

/// Project time-to-solution for one model at one scale.
pub fn time_to_solution(arch: &ModelArch, gpus: usize, budget: TrainingBudget) -> ScalingPoint {
    let profile = ModelProfile::from_arch(arch);
    let model = IterationModel::new(profile, ClusterSpec::frontera(gpus), budget.local_batch);
    let iters_per_epoch = budget.dataset / (gpus * budget.local_batch);
    let cfg = KfacRunConfig::with_freq(paper_update_freq(gpus));

    let sgd_iter = model.sgd_iteration().total();
    let lw_iter = model.kfac_lw_iteration(cfg).total();
    let opt_iter = model.kfac_opt_iteration(cfg).total();

    ScalingPoint {
        gpus,
        sgd_s: sgd_iter * (iters_per_epoch * budget.sgd_epochs) as f64,
        lw_s: lw_iter * (iters_per_epoch * budget.kfac_epochs) as f64,
        opt_s: opt_iter * (iters_per_epoch * budget.kfac_epochs) as f64,
    }
}

/// Full scaling sweep (the paper's {16, 32, 64, 128, 256}).
pub fn scaling_sweep(arch: &ModelArch, budget: TrainingBudget) -> Vec<ScalingPoint> {
    [16usize, 32, 64, 128, 256]
        .iter()
        .map(|&g| time_to_solution(arch, g, budget))
        .collect()
}

/// Find the GPU count at which K-FAC-opt stops beating SGD for a model
/// (binary search over powers of two in `[16, max_gpus]`). Returns
/// `None` if K-FAC still wins at `max_gpus`.
///
/// This answers the practical question the paper's Fig. 9 raises: *how
/// far* can each model scale before the second-order overheads eat the
/// 55-vs-90-epoch advantage?
pub fn crossover_scale(arch: &ModelArch, budget: TrainingBudget, max_gpus: usize) -> Option<usize> {
    let mut gpus = 16usize;
    while gpus <= max_gpus {
        let p = time_to_solution(arch, gpus, budget);
        if p.opt_improvement() <= 0.0 {
            return Some(gpus);
        }
        gpus *= 2;
    }
    None
}

/// Scaling efficiency of a series relative to its smallest scale:
/// `eff(N) = T(16)·16 / (T(N)·N)`.
pub fn efficiency(points: &[ScalingPoint], extract: impl Fn(&ScalingPoint) -> f64) -> Vec<f64> {
    let base = extract(&points[0]) * points[0].gpus as f64;
    points
        .iter()
        .map(|p| base / (extract(p) * p.gpus as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfac_nn::arch::{resnet101, resnet152, resnet50};

    #[test]
    fn paper_interval_schedule() {
        assert_eq!(paper_update_freq(16), 2000);
        assert_eq!(paper_update_freq(32), 1000);
        assert_eq!(paper_update_freq(64), 500);
        assert_eq!(paper_update_freq(128), 250);
        assert_eq!(paper_update_freq(256), 125);
    }

    #[test]
    fn resnet50_ordering_matches_fig7() {
        // At every scale: opt < lw < sgd for ResNet-50.
        for p in scaling_sweep(&resnet50(), TrainingBudget::default()) {
            assert!(
                p.opt_s < p.lw_s && p.lw_s < p.sgd_s,
                "at {} GPUs: opt {:.0}s lw {:.0}s sgd {:.0}s",
                p.gpus,
                p.opt_s,
                p.lw_s,
                p.sgd_s
            );
        }
    }

    #[test]
    fn improvement_band_matches_table_iv_shape() {
        // ResNet-50: K-FAC-opt beats SGD by a healthy double-digit margin
        // at all scales (paper: 17.7–25.2%).
        for p in scaling_sweep(&resnet50(), TrainingBudget::default()) {
            let imp = p.opt_improvement();
            assert!(
                (0.05..0.45).contains(&imp),
                "{} GPUs: improvement {:.1}%",
                p.gpus,
                imp * 100.0
            );
        }
    }

    #[test]
    fn advantage_shrinks_with_model_size() {
        // Table IV's row-wise trend at 64 GPUs: ResNet-50 gains most,
        // ResNet-152 least.
        let b = TrainingBudget::default();
        let i50 = time_to_solution(&resnet50(), 64, b).opt_improvement();
        let i101 = time_to_solution(&resnet101(), 64, b).opt_improvement();
        let i152 = time_to_solution(&resnet152(), 64, b).opt_improvement();
        assert!(i50 > i101, "{i50} vs {i101}");
        assert!(i101 > i152, "{i101} vs {i152}");
    }

    #[test]
    fn resnet152_advantage_collapses_at_extreme_scale() {
        // Fig. 9 / Table IV: at 256 GPUs on ResNet-152 the K-FAC-opt
        // advantage is at its minimum across the sweep (the paper measures
        // it going negative).
        let pts = scaling_sweep(&resnet152(), TrainingBudget::default());
        let imps: Vec<f64> = pts.iter().map(|p| p.opt_improvement()).collect();
        let last = *imps.last().unwrap();
        assert!(
            imps[..imps.len() - 1].iter().all(|&i| i > last),
            "256-GPU improvement {last:.3} should be the sweep minimum: {imps:?}"
        );
    }

    #[test]
    fn efficiency_degrades_with_scale() {
        // Fig. 7's efficiency observation: all methods lose efficiency as
        // scale grows; drops below ~50% by 256 GPUs.
        let pts = scaling_sweep(&resnet50(), TrainingBudget::default());
        let eff = efficiency(&pts, |p| p.opt_s);
        assert!((eff[0] - 1.0).abs() < 1e-9);
        for w in eff.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "efficiency must not increase: {eff:?}");
        }
    }

    #[test]
    fn crossover_only_for_the_deepest_model() {
        // Fig. 9's message: ResNet-152 crosses over within the paper's
        // sweep range; ResNet-50 does not.
        let b = TrainingBudget::default();
        assert_eq!(crossover_scale(&resnet50(), b, 256), None);
        let c152 = crossover_scale(&resnet152(), b, 1024);
        assert!(c152.is_some(), "ResNet-152 must cross over by 1024 GPUs");
        assert!(c152.unwrap() >= 128, "but not before 128 GPUs: {c152:?}");
    }

    #[test]
    fn time_decreases_with_more_gpus() {
        let pts = scaling_sweep(&resnet50(), TrainingBudget::default());
        for w in pts.windows(2) {
            assert!(w[1].sgd_s < w[0].sgd_s);
            assert!(w[1].opt_s < w[0].opt_s);
        }
    }
}
