//! Calibrate the α/β collective cost model against *measured* fabric
//! timings.
//!
//! `xp bench-allreduce` times pipelined-ring and halving-doubling
//! allreduces across real OS processes on the TCP fabric and writes
//! `BENCH_allreduce.json` (committed at the repo root). This module
//! closes the loop: it parses that report, turns the affine fit into a
//! [`LinkSpec`], checks the analytic ring model against the raw
//! measurements, and re-runs the scaling projections with the fitted
//! constants in place of the Frontera presets.
//!
//! The point is falsifiability: the simulator's collective prices are no
//! longer purely literature constants — on this host they are anchored
//! to timings the repo itself can regenerate with
//! `cargo run --release -p kfac-harness --bin xp -- bench-allreduce`.

use crate::hardware::{ClusterSpec, GpuSpec};
use crate::iteration::{IterationModel, KfacRunConfig};
use crate::profile::ModelProfile;
use crate::scaling::{paper_update_freq, ScalingPoint, TrainingBudget};
use kfac_collectives::LinkSpec;
use kfac_nn::arch::ModelArch;
use kfac_telemetry::json::Json;

/// One timed allreduce from the bench report.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredPoint {
    /// Payload size, bytes.
    pub bytes: u64,
    /// Algorithm name as reported (`pipelined-ring`, `halving-doubling`).
    pub algo: String,
    /// Median wall time, seconds.
    pub seconds: f64,
}

/// A parsed `BENCH_allreduce.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// World size the bench ran with.
    pub ranks: usize,
    /// α/β fitted from the pipelined-ring series.
    pub link: LinkSpec,
    /// Measured size at which halving-doubling stops beating the ring,
    /// if the fits crossed.
    pub crossover_bytes: Option<u64>,
    /// Raw measurements, all algorithms.
    pub points: Vec<MeasuredPoint>,
}

fn field_f64(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("bench report: missing numeric field `{key}`"))
}

impl BenchReport {
    /// Parse the JSON written by `xp bench-allreduce --json`.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let root = Json::parse(text)?;
        let ranks = field_f64(&root, "ranks")? as usize;
        let fitted = root
            .get("fitted")
            .ok_or_else(|| "bench report: missing `fitted` object".to_string())?;
        let link = LinkSpec {
            alpha_s: field_f64(fitted, "alpha_s")?,
            beta_s_per_byte: field_f64(fitted, "beta_s_per_byte")?,
        };
        let crossover_bytes = root
            .get("crossover_bytes")
            .and_then(Json::as_f64)
            .map(|v| v as u64);
        let results = root
            .get("results")
            .and_then(Json::as_arr)
            .ok_or_else(|| "bench report: missing `results` array".to_string())?;
        let mut points = Vec::with_capacity(results.len());
        for entry in results {
            points.push(MeasuredPoint {
                bytes: field_f64(entry, "bytes")? as u64,
                algo: entry
                    .get("algo")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "bench report: result without `algo`".to_string())?
                    .to_string(),
                seconds: field_f64(entry, "seconds")?,
            });
        }
        if points.is_empty() {
            return Err("bench report: empty `results`".to_string());
        }
        Ok(BenchReport {
            ranks,
            link,
            crossover_bytes,
            points,
        })
    }

    /// The pipelined-ring series — the algorithm the analytic
    /// [`LinkSpec::allreduce_s`] model prices.
    pub fn ring_points(&self) -> impl Iterator<Item = &MeasuredPoint> {
        self.points.iter().filter(|p| p.algo == "pipelined-ring")
    }

    /// Median relative error of the fitted analytic model against the
    /// raw ring measurements: `median |model − measured| / measured`.
    ///
    /// Small messages are latency-bound and the clamped α≥0 fit can
    /// underestimate them badly, which is exactly why the *median* (not
    /// the max) is the acceptance statistic: the model must be right
    /// about the bulk of the size range it prices.
    pub fn median_rel_error(&self) -> f64 {
        let mut errs: Vec<f64> = self
            .ring_points()
            .map(|p| {
                let model = self.link.allreduce_s(p.bytes, self.ranks);
                (model - p.seconds).abs() / p.seconds
            })
            .collect();
        assert!(!errs.is_empty(), "no pipelined-ring points in report");
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        errs[errs.len() / 2]
    }
}

/// A cluster spec using the paper's V100 compute rates but *this host's*
/// measured interconnect.
pub fn calibrated_cluster(gpus: usize, link: LinkSpec) -> ClusterSpec {
    ClusterSpec {
        gpus,
        link,
        gpu: GpuSpec::v100(),
    }
}

/// [`crate::scaling::time_to_solution`] with the fitted link in place of
/// the Frontera preset.
pub fn time_to_solution_calibrated(
    arch: &ModelArch,
    gpus: usize,
    budget: TrainingBudget,
    link: LinkSpec,
) -> ScalingPoint {
    let profile = ModelProfile::from_arch(arch);
    let model = IterationModel::new(profile, calibrated_cluster(gpus, link), budget.local_batch);
    let iters_per_epoch = budget.dataset / (gpus * budget.local_batch);
    let cfg = KfacRunConfig::with_freq(paper_update_freq(gpus));

    let sgd_iter = model.sgd_iteration().total();
    let lw_iter = model.kfac_lw_iteration(cfg).total();
    let opt_iter = model.kfac_opt_iteration(cfg).total();

    ScalingPoint {
        gpus,
        sgd_s: sgd_iter * (iters_per_epoch * budget.sgd_epochs) as f64,
        lw_s: lw_iter * (iters_per_epoch * budget.kfac_epochs) as f64,
        opt_s: opt_iter * (iters_per_epoch * budget.kfac_epochs) as f64,
    }
}

/// Full {16, …, 256} sweep on the fitted link.
pub fn scaling_sweep_calibrated(
    arch: &ModelArch,
    budget: TrainingBudget,
    link: LinkSpec,
) -> Vec<ScalingPoint> {
    [16usize, 32, 64, 128, 256]
        .iter()
        .map(|&g| time_to_solution_calibrated(arch, g, budget, link))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::time_to_solution;
    use kfac_nn::arch::resnet50;

    fn committed_report() -> BenchReport {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_allreduce.json");
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read committed {path}: {e}"));
        BenchReport::parse(&text).expect("committed bench report parses")
    }

    /// The acceptance tolerance: the fitted α/β model must track the
    /// measured ring timings to within 50% median relative error.
    #[test]
    fn committed_fit_tracks_measurements() {
        let report = committed_report();
        assert!(report.ranks >= 2);
        assert!(report.link.beta_s_per_byte > 0.0);
        assert!(report.link.alpha_s >= 0.0);
        assert!(report.ring_points().count() >= 4, "need a real size sweep");
        let err = report.median_rel_error();
        assert!(
            err < 0.5,
            "fitted model off by {err:.2} median relative error"
        );
    }

    /// Localhost TCP is far slower per byte than the Frontera EDR preset,
    /// so calibrated projections must price communication visibly higher
    /// while staying finite and ordered.
    #[test]
    fn calibrated_projection_responds_to_measured_link() {
        let report = committed_report();
        let budget = TrainingBudget::default();
        let arch = resnet50();
        let preset = time_to_solution(&arch, 64, budget);
        let fitted = time_to_solution_calibrated(&arch, 64, budget, report.link);
        for t in [fitted.sgd_s, fitted.lw_s, fitted.opt_s] {
            assert!(t.is_finite() && t > 0.0);
        }
        assert!(
            fitted.sgd_s > preset.sgd_s,
            "measured localhost link ({:.2e} s/B) should cost more than the \
             EDR preset ({:.2e} s/B)",
            report.link.beta_s_per_byte,
            ClusterSpec::frontera(64).link.beta_s_per_byte,
        );
        let sweep = scaling_sweep_calibrated(&arch, budget, report.link);
        assert_eq!(sweep.len(), 5);
    }

    /// The measured hd→ring crossover must agree with the auto-selection
    /// policy's default threshold to within an order of magnitude — i.e.
    /// the policy constant is not fiction.
    #[test]
    fn measured_crossover_brackets_policy_default() {
        let report = committed_report();
        if let Some(cross) = report.crossover_bytes {
            let policy_default = kfac_collectives::AlgoPolicy::default().hd_max_bytes as u64;
            assert!(
                cross >= policy_default / 8 && cross <= policy_default * 8,
                "measured crossover {cross} B vs policy default {policy_default} B"
            );
        }
    }

    #[test]
    fn parse_rejects_malformed_reports() {
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse("{\"ranks\": 4}").is_err());
        let no_results = r#"{"ranks": 4, "fitted": {"alpha_s": 1e-6, "beta_s_per_byte": 1e-9}}"#;
        assert!(BenchReport::parse(no_results).is_err());
    }

    #[test]
    fn parse_roundtrips_a_synthetic_report() {
        let text = r#"{
            "backend": "proc", "ranks": 4, "iters": 3,
            "results": [
                {"bytes": 1024, "algo": "pipelined-ring", "seconds": 1.0e-4},
                {"bytes": 1048576, "algo": "pipelined-ring", "seconds": 2.0e-3}
            ],
            "fits": [],
            "fitted": {"alpha_s": 2.0e-6, "beta_s_per_byte": 1.0e-9},
            "crossover_bytes": 65536
        }"#;
        let r = BenchReport::parse(text).unwrap();
        assert_eq!(r.ranks, 4);
        assert_eq!(r.crossover_bytes, Some(65536));
        assert_eq!(r.points.len(), 2);
        assert_eq!(r.link.alpha_s, 2.0e-6);
        assert!(r.median_rel_error().is_finite());
    }
}
