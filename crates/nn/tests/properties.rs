//! Property tests for the neural-network substrate: shape algebra,
//! im2col adjointness, loss-gradient validity and capture invariants
//! across randomized layer configurations.

use kfac_nn::im2col::{col2im, conv_out_dim, im2col};
use kfac_nn::{layer::Mode, Conv2d, CrossEntropyLoss, KfacEligible, Layer, Linear};
use kfac_tensor::{Matrix, Rng64, Tensor4};
use proptest::prelude::*;

fn random_tensor(n: usize, c: usize, h: usize, w: usize, seed: u64) -> Tensor4 {
    let mut rng = Rng64::new(seed);
    Tensor4::from_vec(
        n,
        c,
        h,
        w,
        (0..n * c * h * w).map(|_| rng.normal_f32()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `output_shape` always agrees with the actual forward output.
    #[test]
    fn conv_output_shape_consistent(
        c_in in 1usize..4,
        c_out in 1usize..4,
        k in 1usize..4,
        stride in 1usize..3,
        hw in 4usize..9,
        seed in any::<u64>(),
    ) {
        let pad = k / 2;
        let mut rng = Rng64::new(seed);
        let mut conv = Conv2d::new("c", c_in, c_out, k, stride, pad, false, &mut rng);
        let x = random_tensor(2, c_in, hw, hw, seed);
        let expect = conv.output_shape((2, c_in, hw, hw));
        let y = conv.forward(&x, Mode::Eval);
        prop_assert_eq!(y.shape(), expect);
    }

    /// im2col/col2im adjointness for random geometries:
    /// ⟨im2col(x), y⟩ = ⟨x, col2im(y)⟩.
    #[test]
    fn im2col_adjoint(
        c in 1usize..4,
        k in 1usize..4,
        stride in 1usize..3,
        hw in 4usize..9,
        seed in any::<u64>(),
    ) {
        let pad = k / 2;
        prop_assume!(hw + 2 * pad >= k);
        let shape = (2usize, c, hw, hw);
        let x = random_tensor(shape.0, shape.1, shape.2, shape.3, seed);
        let fx = im2col(&x, k, stride, pad);
        let mut rng = Rng64::new(seed ^ 0xabc);
        let y = Matrix::from_vec(
            fx.rows(),
            fx.cols(),
            (0..fx.len()).map(|_| rng.normal_f32()).collect(),
        );
        let aty = col2im(&y, shape, k, stride, pad);
        let lhs: f64 = fx.as_slice().iter().zip(y.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64).sum();
        let rhs: f64 = x.as_slice().iter().zip(aty.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0));
    }

    /// Conv out-dims follow the standard formula for all valid configs.
    #[test]
    fn out_dim_formula_bounds(
        input in 1usize..64,
        k in 1usize..8,
        stride in 1usize..4,
        pad in 0usize..4,
    ) {
        prop_assume!(input + 2 * pad >= k);
        let o = conv_out_dim(input, k, stride, pad);
        prop_assert!(o >= 1);
        // The last window must fit.
        prop_assert!((o - 1) * stride + k <= input + 2 * pad);
        prop_assert!(o * stride + k > input + 2 * pad);
    }

    /// Cross-entropy gradient always sums to ~0 per sample and points
    /// uphill w.r.t. the loss (positive inner product with itself).
    #[test]
    fn loss_gradient_properties(
        logits in proptest::collection::vec(-5.0f32..5.0, 12),
        smoothing in 0.0f32..0.3,
        t0 in 0usize..4,
        t1 in 0usize..4,
        t2 in 0usize..4,
    ) {
        let loss = CrossEntropyLoss::with_smoothing(smoothing);
        let t = Tensor4::from_vec(3, 4, 1, 1, logits);
        let (l, g) = loss.forward(&t, &[t0, t1, t2]);
        prop_assert!(l.is_finite() && l >= 0.0);
        for i in 0..3 {
            let s: f32 = g.as_slice()[i * 4..(i + 1) * 4].iter().sum();
            prop_assert!(s.abs() < 1e-5, "per-sample gradient sum {s}");
        }
    }

    /// Linear capture: factor shapes always match `factor_dims`, and the
    /// grad-matrix round-trip is exact.
    #[test]
    fn linear_capture_and_roundtrip(
        in_f in 1usize..8,
        out_f in 1usize..8,
        bias in any::<bool>(),
        batch in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::new(seed);
        let mut l = Linear::new("fc", in_f, out_f, bias, &mut rng);
        l.set_capture(true);
        let x = random_tensor(batch, in_f, 1, 1, seed);
        let y = l.forward(&x, Mode::Train);
        let gy = random_tensor(batch, out_f, 1, 1, seed ^ 1);
        let _ = l.backward(&gy);
        prop_assert!(l.has_capture());
        let (a, g) = l.compute_factors();
        let (da, dg) = l.factor_dims();
        prop_assert_eq!(a.shape(), (da, da));
        prop_assert_eq!(g.shape(), (dg, dg));
        prop_assert_eq!(a.asymmetry(), 0.0);

        let gm = l.grad_matrix();
        l.set_grad_matrix(&gm);
        let gm2 = l.grad_matrix();
        prop_assert_eq!(gm, gm2);
        let _ = y;
    }
}
