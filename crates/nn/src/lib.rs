//! # kfac-nn
//!
//! Neural-network substrate for the `kfac-rs` reproduction of
//! *Convolutional Neural Network Training with Distributed K-FAC*
//! (Pauloski et al., SC 2020).
//!
//! This crate plays the role PyTorch plays in the paper: it provides the
//! layers, explicit forward/backward propagation, the ResNet model family,
//! and — critically — the **K-FAC capture hooks**. The paper registers
//! forward/backward hooks "to save the activation of the previous layer
//! and gradient with respect to the output of the current layer" (§IV-B);
//! here the [`layer::Layer`] trait carries a capture flag and the two
//! K-FAC-eligible layer types ([`linear::Linear`], [`conv::Conv2d`])
//! implement [`layer::KfacEligible`], which exposes exactly the factor and
//! gradient views Algorithm 1 needs.
//!
//! Modules:
//!
//! * [`layer`] — `Layer` / `KfacEligible` traits, train/eval modes.
//! * [`linear`], [`conv`], [`batchnorm`], [`activation`], [`pool`],
//!   [`reshape`] — primitive layers (Conv2d lowers to GEMM via
//!   [`im2col`]).
//! * [`sequential`], [`residual`] — containers; ResNets are built from
//!   them in [`resnet`].
//! * [`arch`] — *full-size* ResNet-50/101/152 dimension tables (metadata
//!   only) for the scaling simulator.
//! * [`loss`] — softmax cross-entropy with label smoothing.
//! * [`metrics`] — top-1 accuracy.
//! * [`testutil`] — finite-difference gradient checking used across the
//!   test suite.

pub mod activation;
pub mod arch;
pub mod batchnorm;
pub mod conv;
pub mod im2col;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod pool;
pub mod reshape;
pub mod residual;
pub mod resnet;
pub mod sequential;
pub mod testutil;

pub use activation::ReLU;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use layer::{KfacEligible, Layer, Mode};
pub use linear::Linear;
pub use loss::CrossEntropyLoss;
pub use metrics::{top1_correct, Accuracy};
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use reshape::Flatten;
pub use residual::ResidualBlock;
pub use sequential::Sequential;
