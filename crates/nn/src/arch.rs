//! Full-size architecture dimension tables (no weights).
//!
//! The scaling experiments (Figures 7–10, Tables III–VI) depend on the
//! *true* per-layer dimensions of ResNet-50/101/152 on 224×224 ImageNet
//! inputs: Kronecker-factor sizes determine eigendecomposition cost and
//! the work-placement imbalance, parameter counts determine gradient
//! traffic, and FLOP counts determine compute time. This module describes
//! those architectures as pure metadata — dimension arithmetic only, no
//! tensors — so the `kfac-cluster` simulator can price a 256-GPU run that
//! could never execute here.

/// One weighted layer of a full-size model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerSpec {
    /// Convolution: `c_in → c_out`, square kernel `k`, producing an
    /// `h_out × w_out` map. ResNet convolutions carry no bias.
    Conv {
        /// Layer path, e.g. `"s2.b0.conv2"`.
        name: String,
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Square kernel size.
        k: usize,
        /// Output height.
        h_out: usize,
        /// Output width.
        w_out: usize,
    },
    /// Fully-connected layer with bias.
    Linear {
        /// Layer path (e.g. `"fc"`).
        name: String,
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
}

impl LayerSpec {
    /// Layer path.
    pub fn name(&self) -> &str {
        match self {
            LayerSpec::Conv { name, .. } => name,
            LayerSpec::Linear { name, .. } => name,
        }
    }

    /// Kronecker-factor dimensions `(dim_A, dim_G)` — identical to the
    /// runnable layers' [`KfacEligible::factor_dims`]
    /// (crate::layer::KfacEligible::factor_dims).
    pub fn factor_dims(&self) -> (usize, usize) {
        match self {
            LayerSpec::Conv { c_in, c_out, k, .. } => (c_in * k * k, *c_out),
            LayerSpec::Linear {
                in_features,
                out_features,
                ..
            } => (in_features + 1, *out_features),
        }
    }

    /// Trainable parameter count.
    pub fn params(&self) -> usize {
        match self {
            LayerSpec::Conv { c_in, c_out, k, .. } => c_in * c_out * k * k,
            LayerSpec::Linear {
                in_features,
                out_features,
                ..
            } => in_features * out_features + out_features,
        }
    }

    /// Spatial positions of the output map (1 for Linear) — the number of
    /// im2col rows contributed per example, which drives factor-computation
    /// cost.
    pub fn spatial_positions(&self) -> usize {
        match self {
            LayerSpec::Conv { h_out, w_out, .. } => h_out * w_out,
            LayerSpec::Linear { .. } => 1,
        }
    }

    /// Forward multiply-accumulate FLOPs per example (×2 for mul+add).
    pub fn fwd_flops(&self) -> u64 {
        match self {
            LayerSpec::Conv {
                c_in,
                c_out,
                k,
                h_out,
                w_out,
                ..
            } => 2 * (c_in * c_out * k * k * h_out * w_out) as u64,
            LayerSpec::Linear {
                in_features,
                out_features,
                ..
            } => 2 * (in_features * out_features) as u64,
        }
    }

    /// FLOPs per example to accumulate both Kronecker factors
    /// (`A += patchᵀpatch`, `G += gᵀg` over the spatial positions).
    pub fn factor_flops(&self) -> u64 {
        let (da, dg) = self.factor_dims();
        let rows = self.spatial_positions() as u64;
        rows * (da * da + dg * dg) as u64
    }

    /// FLOPs to eigendecompose both factors once (Jacobi/QR-class `c·n³`
    /// with the conventional dense-eig constant c ≈ 9).
    pub fn eig_flops(&self) -> u64 {
        let (da, dg) = self.factor_dims();
        9 * ((da * da * da) as u64 + (dg * dg * dg) as u64)
    }
}

/// Full-size model description for the simulator.
#[derive(Debug, Clone)]
pub struct ModelArch {
    /// Model name (`"ResNet-50"` …).
    pub name: String,
    /// Every K-FAC-eligible weighted layer, in structural order.
    pub layers: Vec<LayerSpec>,
    /// Parameters in non-K-FAC layers (BatchNorm γ/β), included in
    /// gradient-traffic accounting.
    pub bn_params: usize,
}

impl ModelArch {
    /// Total trainable parameters.
    pub fn total_params(&self) -> usize {
        self.layers.iter().map(|l| l.params()).sum::<usize>() + self.bn_params
    }

    /// Per-example forward FLOPs.
    pub fn fwd_flops(&self) -> u64 {
        self.layers.iter().map(|l| l.fwd_flops()).sum()
    }

    /// Per-example factor-accumulation FLOPs (paper Fig. 10's quantity).
    pub fn factor_flops(&self) -> u64 {
        self.layers.iter().map(|l| l.factor_flops()).sum()
    }
}

/// Build a full-size bottleneck ResNet arch on 224×224 inputs.
fn bottleneck_arch(name: &str, blocks: [usize; 4]) -> ModelArch {
    let mut layers = Vec::new();
    let mut bn_params = 0usize;
    let mut bn = |c: usize| bn_params += 2 * c;

    // Stem: 7×7/2 conv to 64ch @112, then 3×3/2 max-pool to 56.
    layers.push(LayerSpec::Conv {
        name: "stem.conv".into(),
        c_in: 3,
        c_out: 64,
        k: 7,
        h_out: 112,
        w_out: 112,
    });
    bn(64);

    let mut c_in = 64usize;
    let mut spatial = 56usize;
    for (si, &nblocks) in blocks.iter().enumerate() {
        let c_mid = 64 << si;
        let c_out = c_mid * 4;
        for bi in 0..nblocks {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            let out_sp = spatial / stride;
            let p = format!("s{si}.b{bi}");
            layers.push(LayerSpec::Conv {
                name: format!("{p}.conv1"),
                c_in,
                c_out: c_mid,
                k: 1,
                h_out: spatial,
                w_out: spatial,
            });
            bn(c_mid);
            layers.push(LayerSpec::Conv {
                name: format!("{p}.conv2"),
                c_in: c_mid,
                c_out: c_mid,
                k: 3,
                h_out: out_sp,
                w_out: out_sp,
            });
            bn(c_mid);
            layers.push(LayerSpec::Conv {
                name: format!("{p}.conv3"),
                c_in: c_mid,
                c_out,
                k: 1,
                h_out: out_sp,
                w_out: out_sp,
            });
            bn(c_out);
            if stride != 1 || c_in != c_out {
                layers.push(LayerSpec::Conv {
                    name: format!("{p}.down"),
                    c_in,
                    c_out,
                    k: 1,
                    h_out: out_sp,
                    w_out: out_sp,
                });
                bn(c_out);
            }
            c_in = c_out;
            spatial = out_sp;
        }
    }

    layers.push(LayerSpec::Linear {
        name: "fc".into(),
        in_features: 2048,
        out_features: 1000,
    });

    ModelArch {
        name: name.into(),
        layers,
        bn_params,
    }
}

/// Build a full-size *basic-block* ResNet arch on 224×224 inputs
/// (ResNet-18/34 family; the paper used ResNet-34 during development).
fn basic_arch(name: &str, blocks: [usize; 4]) -> ModelArch {
    let mut layers = Vec::new();
    let mut bn_params = 0usize;
    let mut bn = |c: usize| bn_params += 2 * c;

    layers.push(LayerSpec::Conv {
        name: "stem.conv".into(),
        c_in: 3,
        c_out: 64,
        k: 7,
        h_out: 112,
        w_out: 112,
    });
    bn(64);

    let mut c_in = 64usize;
    let mut spatial = 56usize;
    for (si, &nblocks) in blocks.iter().enumerate() {
        let width = 64 << si;
        for bi in 0..nblocks {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            let out_sp = spatial / stride;
            let p = format!("s{si}.b{bi}");
            layers.push(LayerSpec::Conv {
                name: format!("{p}.conv1"),
                c_in,
                c_out: width,
                k: 3,
                h_out: out_sp,
                w_out: out_sp,
            });
            bn(width);
            layers.push(LayerSpec::Conv {
                name: format!("{p}.conv2"),
                c_in: width,
                c_out: width,
                k: 3,
                h_out: out_sp,
                w_out: out_sp,
            });
            bn(width);
            if stride != 1 || c_in != width {
                layers.push(LayerSpec::Conv {
                    name: format!("{p}.down"),
                    c_in,
                    c_out: width,
                    k: 1,
                    h_out: out_sp,
                    w_out: out_sp,
                });
                bn(width);
            }
            c_in = width;
            spatial = out_sp;
        }
    }
    layers.push(LayerSpec::Linear {
        name: "fc".into(),
        in_features: 512,
        out_features: 1000,
    });
    ModelArch {
        name: name.into(),
        layers,
        bn_params,
    }
}

/// Full-size ResNet-18.
pub fn resnet18() -> ModelArch {
    basic_arch("ResNet-18", [2, 2, 2, 2])
}

/// Full-size ResNet-34 (the paper's development model, §VI-B).
pub fn resnet34() -> ModelArch {
    basic_arch("ResNet-34", [3, 4, 6, 3])
}

/// Full-size ResNet-50 on ImageNet (224×224, 1000 classes).
pub fn resnet50() -> ModelArch {
    bottleneck_arch("ResNet-50", [3, 4, 6, 3])
}

/// Full-size ResNet-101.
pub fn resnet101() -> ModelArch {
    bottleneck_arch("ResNet-101", [3, 4, 23, 3])
}

/// Full-size ResNet-152.
pub fn resnet152() -> ModelArch {
    bottleneck_arch("ResNet-152", [3, 8, 36, 3])
}

/// Full-size CIFAR ResNet-32 (the paper's correctness model).
pub fn resnet32_cifar() -> ModelArch {
    let mut layers = Vec::new();
    let mut bn_params = 0usize;
    layers.push(LayerSpec::Conv {
        name: "stem.conv".into(),
        c_in: 3,
        c_out: 16,
        k: 3,
        h_out: 32,
        w_out: 32,
    });
    bn_params += 32;
    let mut c_in = 16usize;
    let mut spatial = 32usize;
    for (si, width) in [16usize, 32, 64].into_iter().enumerate() {
        for bi in 0..5 {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            let out_sp = spatial / stride;
            let p = format!("s{si}.b{bi}");
            layers.push(LayerSpec::Conv {
                name: format!("{p}.conv1"),
                c_in,
                c_out: width,
                k: 3,
                h_out: out_sp,
                w_out: out_sp,
            });
            layers.push(LayerSpec::Conv {
                name: format!("{p}.conv2"),
                c_in: width,
                c_out: width,
                k: 3,
                h_out: out_sp,
                w_out: out_sp,
            });
            bn_params += 4 * width;
            if stride != 1 || c_in != width {
                layers.push(LayerSpec::Conv {
                    name: format!("{p}.down"),
                    c_in,
                    c_out: width,
                    k: 1,
                    h_out: out_sp,
                    w_out: out_sp,
                });
                bn_params += 2 * width;
            }
            c_in = width;
            spatial = out_sp;
        }
    }
    layers.push(LayerSpec::Linear {
        name: "fc".into(),
        in_features: 64,
        out_features: 10,
    });
    ModelArch {
        name: "ResNet-32".into(),
        layers,
        bn_params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_param_count_matches_reference() {
        // torchvision resnet50: 25,557,032 parameters.
        let m = resnet50();
        let p = m.total_params();
        assert!(
            (25_000_000..26_100_000).contains(&p),
            "ResNet-50 params {p} out of expected range"
        );
    }

    #[test]
    fn resnet18_and_34_reference_counts() {
        // torchvision: 11,689,512 and 21,797,672.
        let p18 = resnet18().total_params();
        let p34 = resnet34().total_params();
        assert!((11_400_000..11_900_000).contains(&p18), "{p18}");
        assert!((21_400_000..22_100_000).contains(&p34), "{p34}");
    }

    #[test]
    fn basic_arch_layer_counts() {
        // ResNet-18: stem + 16 block convs + 3 projections + fc.
        assert_eq!(resnet18().layers.len(), 1 + 16 + 3 + 1);
        // ResNet-34: stem + 32 block convs + 3 projections + fc.
        assert_eq!(resnet34().layers.len(), 1 + 32 + 3 + 1);
    }

    #[test]
    fn resnet101_and_152_reference_counts() {
        // torchvision: 44,549,160 and 60,192,808.
        let p101 = resnet101().total_params();
        let p152 = resnet152().total_params();
        assert!((44_000_000..45_200_000).contains(&p101), "{p101}");
        assert!((59_500_000..61_000_000).contains(&p152), "{p152}");
    }

    #[test]
    fn resnet50_flops_reference() {
        // ResNet-50 is ~4.1 GMACs per 224×224 image → ~8.2 GFLOPs at
        // 2 FLOPs per MAC.
        let f = resnet50().fwd_flops();
        assert!(
            (7_400_000_000..9_000_000_000u64).contains(&f),
            "ResNet-50 fwd FLOPs {f}"
        );
    }

    #[test]
    fn layer_counts() {
        assert_eq!(resnet50().layers.len(), 1 + 48 + 4 + 1);
        assert_eq!(resnet101().layers.len(), 1 + 99 + 4 + 1);
        assert_eq!(resnet152().layers.len(), 1 + 150 + 4 + 1);
        assert_eq!(resnet32_cifar().layers.len(), 1 + 30 + 2 + 1);
    }

    #[test]
    fn factor_dims_spot_checks() {
        let m = resnet50();
        // Stem: A = 3·7·7 = 147, G = 64.
        assert_eq!(m.layers[0].factor_dims(), (147, 64));
        // fc: bias-augmented 2049 × 1000.
        assert_eq!(m.layers.last().unwrap().factor_dims(), (2049, 1000));
        // Largest conv factor: s3 3×3 conv has A = 512·9 = 4608.
        let max_a = m.layers.iter().map(|l| l.factor_dims().0).max().unwrap();
        assert_eq!(max_a, 4608);
    }

    #[test]
    fn factor_flops_grow_superlinearly_with_depth() {
        // Fig. 10's observation: factor-computation work grows faster than
        // parameter count across ResNet-50 → 101 → 152.
        let f50 = resnet50().factor_flops() as f64;
        let f101 = resnet101().factor_flops() as f64;
        let f152 = resnet152().factor_flops() as f64;
        assert!(f50 < f101 && f101 < f152);
        let p50 = resnet50().total_params() as f64;
        let p152 = resnet152().total_params() as f64;
        assert!(
            f152 / f50 > 0.9 * (p152 / p50),
            "factor work should grow at least about as fast as params"
        );
    }

    #[test]
    fn cifar_resnet32_param_count() {
        // Reference ResNet-32 has ~0.46M params.
        let p = resnet32_cifar().total_params();
        assert!((420_000..500_000).contains(&p), "{p}");
    }

    #[test]
    fn eig_flops_dominated_by_biggest_factor() {
        let m = resnet50();
        let total: u64 = m.layers.iter().map(|l| l.eig_flops()).sum();
        let biggest = m.layers.iter().map(|l| l.eig_flops()).max().unwrap();
        // The 4608-dim factors dwarf everything else — the root cause of
        // the Table VI imbalance.
        assert!(biggest as f64 / total as f64 > 0.2);
    }
}
