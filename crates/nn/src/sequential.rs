//! Sequential container.

use crate::layer::{KfacEligible, Layer, Mode};
use kfac_tensor::Tensor4;

/// A chain of layers applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Build from a layer list.
    pub fn from_layers(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Append a layer (builder style).
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of direct children.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Backward pass with a per-child completion callback.
    ///
    /// Children run in reverse structural order (the order gradients
    /// become available); after child `c` finishes its backward,
    /// `on_layer_done(c, layer)` fires with the child's structural index
    /// and the child itself, whose gradients are now final for this
    /// iteration. This is the hook the overlap scheduler uses to release
    /// a layer's gradient bucket for allreduce while earlier layers are
    /// still in backprop (paper §V-B).
    pub fn backward_each(
        &mut self,
        grad_output: &Tensor4,
        on_layer_done: &mut dyn FnMut(usize, &mut dyn Layer),
    ) -> Tensor4 {
        let mut g = grad_output.clone();
        for (c, layer) in self.layers.iter_mut().enumerate().rev() {
            g = layer.backward(&g);
            on_layer_done(c, &mut **layer);
        }
        g
    }

    /// Visit the parameters of direct child `child` only, in the same
    /// order [`Layer::visit_params`] yields them for the whole chain.
    #[allow(clippy::type_complexity)] // the visitor signature IS the API
    pub fn visit_child_params(
        &mut self,
        child: usize,
        f: &mut dyn FnMut(&str, &mut [f32], &mut [f32]),
    ) {
        self.layers[child].visit_params("", f);
    }

    /// Flat parameter count of each direct child, in structural order.
    /// Summing the result gives [`Layer::num_params`]; the per-child
    /// sizes define the contiguous gradient-bucket ranges used by the
    /// overlapped execution path.
    pub fn child_param_counts(&mut self) -> Vec<usize> {
        self.layers
            .iter_mut()
            .map(|l| {
                let mut n = 0;
                l.visit_params("", &mut |_, p, _| n += p.len());
                n
            })
            .collect()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor4) -> Tensor4 {
        self.backward_each(grad_output, &mut |_, _| {})
    }

    fn output_shape(&self, input: (usize, usize, usize, usize)) -> (usize, usize, usize, usize) {
        self.layers
            .iter()
            .fold(input, |shape, l| l.output_shape(shape))
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_params(prefix, f);
        }
    }

    fn set_capture(&mut self, on: bool) {
        for layer in &mut self.layers {
            layer.set_capture(on);
        }
    }

    fn collect_kfac<'a>(&'a mut self, out: &mut Vec<&'a mut dyn KfacEligible>) {
        for layer in &mut self.layers {
            layer.collect_kfac(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ReLU;
    use crate::linear::Linear;
    use crate::testutil::{finite_diff_check, tensor_from};
    use kfac_tensor::Rng64;

    fn mlp(rng: &mut Rng64) -> Sequential {
        Sequential::from_layers(vec![
            Box::new(Linear::new("fc1", 4, 6, true, rng)),
            Box::new(ReLU::new()),
            Box::new(Linear::new("fc2", 6, 3, true, rng)),
        ])
    }

    #[test]
    fn composes_shapes() {
        let mut rng = Rng64::new(1);
        let m = mlp(&mut rng);
        assert_eq!(m.output_shape((5, 4, 1, 1)), (5, 3, 1, 1));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn gradient_check_through_chain() {
        let mut rng = Rng64::new(2);
        let m = mlp(&mut rng);
        finite_diff_check(Box::new(m), (3, 4, 1, 1), 5e-2, &mut rng);
    }

    #[test]
    fn collects_kfac_in_structural_order() {
        let mut rng = Rng64::new(3);
        let mut m = mlp(&mut rng);
        let mut v = Vec::new();
        m.collect_kfac(&mut v);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].kfac_name(), "fc1");
        assert_eq!(v[1].kfac_name(), "fc2");
    }

    #[test]
    fn zero_grad_reaches_children() {
        let mut rng = Rng64::new(4);
        let mut m = mlp(&mut rng);
        let x = tensor_from(1, 4, 1, 1, &[1.0, 2.0, 3.0, 4.0]);
        let y = m.forward(&x, Mode::Train);
        let _ = m.backward(&y);
        let mut nonzero = 0;
        m.visit_params("", &mut |_, _, g| {
            nonzero += g.iter().filter(|&&v| v != 0.0).count();
        });
        assert!(nonzero > 0);
        m.zero_grad();
        m.visit_params("", &mut |_, _, g| {
            assert!(g.iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn backward_each_fires_in_reverse_order_and_matches_backward() {
        let mut rng = Rng64::new(6);
        let mut m = mlp(&mut rng);
        let x = tensor_from(2, 4, 1, 1, &[0.5; 8]);
        let y = m.forward(&x, Mode::Train);
        let mut order = Vec::new();
        let g1 = m.backward_each(&y, &mut |c, _| order.push(c));
        assert_eq!(order, vec![2, 1, 0], "reverse structural order");

        // Same forward state, plain backward: identical input gradient.
        let mut rng2 = Rng64::new(6);
        let mut m2 = mlp(&mut rng2);
        let y2 = m2.forward(&x, Mode::Train);
        let g2 = m2.backward(&y2);
        assert_eq!(g1.as_slice(), g2.as_slice());
    }

    #[test]
    fn child_param_counts_partition_the_flat_parameter_vector() {
        let mut rng = Rng64::new(7);
        let mut m = mlp(&mut rng);
        let counts = m.child_param_counts();
        assert_eq!(counts, vec![30, 0, 21]); // fc1, ReLU, fc2
        assert_eq!(counts.iter().sum::<usize>(), m.num_params());

        // visit_child_params sees exactly that child's slice.
        let mut seen = 0;
        m.visit_child_params(2, &mut |name, p, _| {
            assert!(name.contains("fc2"), "unexpected param {name}");
            seen += p.len();
        });
        assert_eq!(seen, 21);
    }

    #[test]
    fn param_count() {
        let mut rng = Rng64::new(5);
        let mut m = mlp(&mut rng);
        // fc1: 4·6+6 = 30; fc2: 6·3+3 = 21.
        assert_eq!(m.num_params(), 51);
    }
}
