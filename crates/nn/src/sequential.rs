//! Sequential container.

use crate::layer::{KfacEligible, Layer, Mode};
use kfac_tensor::Tensor4;

/// A chain of layers applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Build from a layer list.
    pub fn from_layers(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Append a layer (builder style).
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of direct children.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor4) -> Tensor4 {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn output_shape(&self, input: (usize, usize, usize, usize)) -> (usize, usize, usize, usize) {
        self.layers
            .iter()
            .fold(input, |shape, l| l.output_shape(shape))
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_params(prefix, f);
        }
    }

    fn set_capture(&mut self, on: bool) {
        for layer in &mut self.layers {
            layer.set_capture(on);
        }
    }

    fn collect_kfac<'a>(&'a mut self, out: &mut Vec<&'a mut dyn KfacEligible>) {
        for layer in &mut self.layers {
            layer.collect_kfac(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ReLU;
    use crate::linear::Linear;
    use crate::testutil::{finite_diff_check, tensor_from};
    use kfac_tensor::Rng64;

    fn mlp(rng: &mut Rng64) -> Sequential {
        Sequential::from_layers(vec![
            Box::new(Linear::new("fc1", 4, 6, true, rng)),
            Box::new(ReLU::new()),
            Box::new(Linear::new("fc2", 6, 3, true, rng)),
        ])
    }

    #[test]
    fn composes_shapes() {
        let mut rng = Rng64::new(1);
        let m = mlp(&mut rng);
        assert_eq!(m.output_shape((5, 4, 1, 1)), (5, 3, 1, 1));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn gradient_check_through_chain() {
        let mut rng = Rng64::new(2);
        let m = mlp(&mut rng);
        finite_diff_check(Box::new(m), (3, 4, 1, 1), 5e-2, &mut rng);
    }

    #[test]
    fn collects_kfac_in_structural_order() {
        let mut rng = Rng64::new(3);
        let mut m = mlp(&mut rng);
        let mut v = Vec::new();
        m.collect_kfac(&mut v);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].kfac_name(), "fc1");
        assert_eq!(v[1].kfac_name(), "fc2");
    }

    #[test]
    fn zero_grad_reaches_children() {
        let mut rng = Rng64::new(4);
        let mut m = mlp(&mut rng);
        let x = tensor_from(1, 4, 1, 1, &[1.0, 2.0, 3.0, 4.0]);
        let y = m.forward(&x, Mode::Train);
        let _ = m.backward(&y);
        let mut nonzero = 0;
        m.visit_params("", &mut |_, _, g| {
            nonzero += g.iter().filter(|&&v| v != 0.0).count();
        });
        assert!(nonzero > 0);
        m.zero_grad();
        m.visit_params("", &mut |_, _, g| {
            assert!(g.iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn param_count() {
        let mut rng = Rng64::new(5);
        let mut m = mlp(&mut rng);
        // fc1: 4·6+6 = 30; fc2: 6·3+3 = 21.
        assert_eq!(m.num_params(), 51);
    }
}
