//! Fully-connected layer with K-FAC capture.
//!
//! `y = x Wᵀ + b` with `W : out × in`. The K-FAC factors follow §II-C:
//! `A = ā āᵀ` over the bias-augmented activations of the previous layer
//! and `G = g gᵀ` over the gradients of this layer's output, both averaged
//! over the mini-batch (Eq. 5, 16–17).

use crate::layer::{Capture, KfacEligible, Layer, Mode};
use kfac_tensor::arena;
use kfac_tensor::gemm::{gemm_into, View};
use kfac_tensor::{init, Matrix, Rng64, Tensor4};

/// Dense layer `y = x Wᵀ + b`. Expects inputs flattened to
/// `(N, in_features, 1, 1)` (insert a [`crate::reshape::Flatten`] first).
pub struct Linear {
    name: String,
    in_features: usize,
    out_features: usize,
    weight: Vec<f32>, // row-major out × in
    bias: Option<Vec<f32>>,
    grad_weight: Vec<f32>,
    grad_bias: Option<Vec<f32>>,
    /// Cached training input (N × in), needed for dW = gᵀ x.
    input: Option<Matrix>,
    capture: Capture,
    /// Retired input buffer, reused by the next forward.
    input_pool: Option<Matrix>,
    /// Persistent scratch for the backward gradient rows.
    gy_rows: Matrix,
}

impl Linear {
    /// Create with PyTorch-default uniform initialization.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut Rng64,
    ) -> Self {
        assert!(in_features > 0 && out_features > 0);
        let mut weight = vec![0.0; out_features * in_features];
        init::linear_default(&mut weight, in_features, rng);
        let bias_v = if bias {
            let mut b = vec![0.0; out_features];
            init::linear_default(&mut b, in_features, rng);
            Some(b)
        } else {
            None
        };
        Linear {
            name: name.into(),
            in_features,
            out_features,
            grad_weight: vec![0.0; out_features * in_features],
            grad_bias: bias_v.as_ref().map(|b| vec![0.0; b.len()]),
            weight,
            bias: bias_v,
            input: None,
            capture: Capture::default(),
            input_pool: None,
            gy_rows: Matrix::zeros(0, 0),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Copy the flattened input into `m` (reshaped in place, no alloc in
    /// steady state).
    fn input_to_matrix_into(input: &Tensor4, in_features: usize, m: &mut Matrix) {
        let (n, c, h, w) = input.shape();
        assert_eq!(
            c * h * w,
            in_features,
            "Linear expects flattened input ({} features, got {}x{}x{})",
            in_features,
            c,
            h,
            w
        );
        m.reset_for(n, in_features);
        m.as_mut_slice().copy_from_slice(input.as_slice());
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        // Reuse the retired input buffer from the previous iteration.
        let mut x = self
            .input_pool
            .take()
            .unwrap_or_else(|| Matrix::zeros(0, 0));
        Self::input_to_matrix_into(input, self.in_features, &mut x);
        let n = x.rows();

        // y = x Wᵀ, multiplying straight against the parameter slice.
        // The result escapes as the output tensor, so it gets a fresh
        // buffer rather than layer scratch.
        let mut y = Matrix::zeros(n, self.out_features);
        gemm_into(
            View::new(x.as_slice(), n, self.in_features),
            View::t(&self.weight, self.out_features, self.in_features),
            y.as_mut_slice(),
        );

        if let Some(b) = &self.bias {
            for i in 0..n {
                let row = y.row_mut(i);
                for (v, &bj) in row.iter_mut().zip(b.iter()) {
                    *v += bj;
                }
            }
        }

        if mode == Mode::Train {
            if self.capture.enabled {
                // ā: bias-augmented activations (the homogeneous-coordinate
                // trick that folds b into W, §II-C).
                self.capture.store_a_augmented(&x, self.bias.is_some());
                self.capture.clear_g();
            }
            self.input = Some(x);
        } else {
            self.input_pool = Some(x);
        }

        Tensor4::from_vec(n, self.out_features, 1, 1, y.into_vec())
    }

    fn backward(&mut self, grad_output: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = grad_output.shape();
        assert_eq!((c, h, w), (self.out_features, 1, 1), "grad shape mismatch");
        self.gy_rows.reset_for(n, self.out_features);
        self.gy_rows
            .as_mut_slice()
            .copy_from_slice(grad_output.as_slice());
        let gy = &self.gy_rows;
        let x = self
            .input
            .take()
            .expect("backward without matching forward");

        if self.capture.enabled {
            // Undo the 1/batch of the mean loss so G matches the paper's
            // per-example-gradient covariance (kfac-pytorch convention).
            self.capture.store_g_scaled(gy, n as f32);
        }

        // dW = gyᵀ x  (out × in): arena scratch, accumulated into the
        // persistent gradient.
        let mut dw = arena::take_matrix(self.out_features, self.in_features);
        gemm_into(
            View::t(gy.as_slice(), n, self.out_features),
            View::new(x.as_slice(), n, self.in_features),
            dw.as_mut_slice(),
        );
        for (gw, d) in self.grad_weight.iter_mut().zip(dw.as_slice()) {
            *gw += d;
        }
        arena::recycle_matrix(dw);
        // db = column sums of gy
        if let Some(gb) = &mut self.grad_bias {
            for i in 0..n {
                for (b, &v) in gb.iter_mut().zip(gy.row(i)) {
                    *b += v;
                }
            }
        }

        // dX = gy W  (N × in); escapes as the returned gradient tensor.
        let mut dx = Matrix::zeros(n, self.in_features);
        gemm_into(
            View::new(gy.as_slice(), n, self.out_features),
            View::new(&self.weight, self.out_features, self.in_features),
            dx.as_mut_slice(),
        );
        self.input_pool = Some(x);
        Tensor4::from_vec(n, self.in_features, 1, 1, dx.into_vec())
    }

    fn output_shape(&self, input: (usize, usize, usize, usize)) -> (usize, usize, usize, usize) {
        (input.0, self.out_features, 1, 1)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        let wname = format!("{prefix}{}.weight", self.name);
        f(&wname, &mut self.weight, &mut self.grad_weight);
        if let (Some(b), Some(gb)) = (&mut self.bias, &mut self.grad_bias) {
            let bname = format!("{prefix}{}.bias", self.name);
            f(&bname, b, gb);
        }
    }

    fn set_capture(&mut self, on: bool) {
        self.capture.enabled = on;
        if on {
            self.capture.clear();
        }
    }

    fn collect_kfac<'a>(&'a mut self, out: &mut Vec<&'a mut dyn KfacEligible>) {
        out.push(self);
    }
}

impl KfacEligible for Linear {
    fn kfac_name(&self) -> String {
        self.name.clone()
    }

    fn factor_dims(&self) -> (usize, usize) {
        (
            self.in_features + usize::from(self.bias.is_some()),
            self.out_features,
        )
    }

    fn has_capture(&self) -> bool {
        self.capture.complete()
    }

    fn compute_factors(&self) -> (Matrix, Matrix) {
        self.capture.factors()
    }

    fn set_capture_dtype(&mut self, dtype: kfac_tensor::Dtype) {
        self.capture.dtype = dtype;
    }

    fn grad_matrix(&self) -> Matrix {
        let extra = usize::from(self.bias.is_some());
        let mut gm = Matrix::zeros(self.out_features, self.in_features + extra);
        for o in 0..self.out_features {
            gm.row_mut(o)[..self.in_features].copy_from_slice(
                &self.grad_weight[o * self.in_features..(o + 1) * self.in_features],
            );
            if extra == 1 {
                gm.row_mut(o)[self.in_features] = self.grad_bias.as_ref().expect("bias grad")[o];
            }
        }
        gm
    }

    fn set_grad_matrix(&mut self, grad: &Matrix) {
        let extra = usize::from(self.bias.is_some());
        assert_eq!(
            grad.shape(),
            (self.out_features, self.in_features + extra),
            "preconditioned gradient shape mismatch"
        );
        for o in 0..self.out_features {
            self.grad_weight[o * self.in_features..(o + 1) * self.in_features]
                .copy_from_slice(&grad.row(o)[..self.in_features]);
            if extra == 1 {
                self.grad_bias.as_mut().expect("bias grad")[o] = grad.row(o)[self.in_features];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{finite_diff_check, tensor_from};

    #[test]
    fn forward_known_values() {
        let mut rng = Rng64::new(1);
        let mut l = Linear::new("fc", 2, 3, true, &mut rng);
        // Overwrite params with known values.
        l.weight.copy_from_slice(&[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        l.bias = Some(vec![0.5, -0.5, 0.0]);
        let x = tensor_from(1, 2, 1, 1, &[2.0, 3.0]);
        let y = l.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[2.5, 2.5, 5.0]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = Rng64::new(2);
        let l = Linear::new("fc", 4, 3, true, &mut rng);
        finite_diff_check(Box::new(l), (2, 4, 1, 1), 5e-2, &mut rng);
    }

    #[test]
    fn gradient_check_no_bias() {
        let mut rng = Rng64::new(3);
        let l = Linear::new("fc", 3, 5, false, &mut rng);
        finite_diff_check(Box::new(l), (3, 3, 1, 1), 5e-2, &mut rng);
    }

    #[test]
    fn capture_produces_expected_factors() {
        let mut rng = Rng64::new(4);
        let mut l = Linear::new("fc", 2, 2, false, &mut rng);
        l.set_capture(true);
        let x = tensor_from(2, 2, 1, 1, &[1.0, 0.0, 0.0, 2.0]);
        let y = l.forward(&x, Mode::Train);
        let gy = tensor_from(2, 2, 1, 1, &[1.0, 1.0, 1.0, -1.0]);
        let _ = l.backward(&gy);
        assert!(l.has_capture());
        let (a, g) = l.compute_factors();
        // A = xᵀx / 2 = [[0.5, 0], [0, 2]]
        assert!((a[(0, 0)] - 0.5).abs() < 1e-6);
        assert!((a[(1, 1)] - 2.0).abs() < 1e-6);
        assert!(a[(0, 1)].abs() < 1e-6);
        // g scaled by batch (2): rows [2,2],[2,-2]; G = ĝᵀĝ/2 = [[4,0],[0,4]]
        assert!((g[(0, 0)] - 4.0).abs() < 1e-6);
        assert!((g[(1, 1)] - 4.0).abs() < 1e-6);
        assert!(g[(0, 1)].abs() < 1e-6);
        let _ = y;
    }

    #[test]
    fn bf16_capture_factors_match_f32_within_tolerance() {
        let mut rng = Rng64::new(21);
        let mut l = Linear::new("fc", 6, 4, true, &mut rng);
        let x = crate::testutil::random_tensor((8, 6, 1, 1), &mut rng);
        let gy = crate::testutil::random_tensor((8, 4, 1, 1), &mut rng);

        l.set_capture(true);
        let _ = l.forward(&x, Mode::Train);
        let _ = l.backward(&gy);
        let (a32, g32) = l.compute_factors();

        l.set_capture_dtype(kfac_tensor::Dtype::Bf16);
        l.set_capture(true);
        let _ = l.forward(&x, Mode::Train);
        let _ = l.backward(&gy);
        assert!(l.has_capture(), "bf16 capture completes");
        assert!(
            l.capture.a16.is_some() && l.capture.a.is_none(),
            "bf16 storage in use"
        );
        let (a16, g16) = l.compute_factors();

        assert_eq!(a32.shape(), a16.shape());
        assert_eq!(g32.shape(), g16.shape());
        // One bf16 rounding on each Gram input → ~2/256 relative slack.
        let scale_a = a32.max_abs().max(1.0);
        assert!(
            a16.max_abs_diff(&a32) <= scale_a / 64.0,
            "{}",
            a16.max_abs_diff(&a32)
        );
        let scale_g = g32.max_abs().max(1.0);
        assert!(
            g16.max_abs_diff(&g32) <= scale_g / 64.0,
            "{}",
            g16.max_abs_diff(&g32)
        );
        // The bias-augmented corner is exactly 1·1·m/m = 1 either way.
        assert_eq!(a16[(6, 6)], 1.0);
    }

    #[test]
    fn grad_matrix_round_trip() {
        let mut rng = Rng64::new(5);
        let mut l = Linear::new("fc", 3, 2, true, &mut rng);
        l.grad_weight = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        l.grad_bias = Some(vec![7.0, 8.0]);
        let gm = l.grad_matrix();
        assert_eq!(gm.shape(), (2, 4));
        assert_eq!(gm.row(0), &[1.0, 2.0, 3.0, 7.0]);
        let mut gm2 = gm.clone();
        gm2.scale(2.0);
        l.set_grad_matrix(&gm2);
        assert_eq!(l.grad_weight[0], 2.0);
        assert_eq!(l.grad_bias.as_ref().unwrap()[1], 16.0);
    }

    #[test]
    fn factor_dims_account_for_bias() {
        let mut rng = Rng64::new(6);
        let with = Linear::new("a", 4, 3, true, &mut rng);
        let without = Linear::new("b", 4, 3, false, &mut rng);
        assert_eq!(with.factor_dims(), (5, 3));
        assert_eq!(without.factor_dims(), (4, 3));
    }

    #[test]
    fn param_visitor_names() {
        let mut rng = Rng64::new(7);
        let mut l = Linear::new("fc", 2, 2, true, &mut rng);
        let mut names = Vec::new();
        l.visit_params("model.", &mut |n, _, _| names.push(n.to_string()));
        assert_eq!(names, vec!["model.fc.weight", "model.fc.bias"]);
    }
}
