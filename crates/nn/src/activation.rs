//! Activation functions (ReLU).

use crate::layer::{KfacEligible, Layer, Mode};
use kfac_tensor::Tensor4;

/// Rectified linear unit, `y = max(x, 0)`.
pub struct ReLU {
    /// Mask of positive inputs from the last training forward.
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// New ReLU.
    pub fn new() -> Self {
        ReLU { mask: None }
    }
}

impl Default for ReLU {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        let (n, c, h, w) = input.shape();
        let mut out = Tensor4::zeros(n, c, h, w);
        if mode == Mode::Train {
            let mut mask = vec![false; input.len()];
            for ((o, &v), m) in out
                .as_mut_slice()
                .iter_mut()
                .zip(input.as_slice())
                .zip(mask.iter_mut())
            {
                if v > 0.0 {
                    *o = v;
                    *m = true;
                }
            }
            self.mask = Some(mask);
        } else {
            for (o, &v) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
                *o = v.max(0.0);
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor4) -> Tensor4 {
        let mask = self.mask.take().expect("backward without training forward");
        assert_eq!(mask.len(), grad_output.len());
        let (n, c, h, w) = grad_output.shape();
        let mut dx = Tensor4::zeros(n, c, h, w);
        for ((o, &g), &m) in dx
            .as_mut_slice()
            .iter_mut()
            .zip(grad_output.as_slice())
            .zip(&mask)
        {
            if m {
                *o = g;
            }
        }
        dx
    }

    fn output_shape(&self, input: (usize, usize, usize, usize)) -> (usize, usize, usize, usize) {
        input
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {}

    fn set_capture(&mut self, _on: bool) {}

    fn collect_kfac<'a>(&'a mut self, _out: &mut Vec<&'a mut dyn KfacEligible>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tensor_from;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = ReLU::new();
        let x = tensor_from(1, 1, 2, 2, &[-1.0, 0.0, 2.0, -3.0]);
        let y = r.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = ReLU::new();
        let x = tensor_from(1, 1, 2, 2, &[-1.0, 0.5, 2.0, -3.0]);
        let _ = r.forward(&x, Mode::Train);
        let g = tensor_from(1, 1, 2, 2, &[10.0, 10.0, 10.0, 10.0]);
        let dx = r.backward(&g);
        assert_eq!(dx.as_slice(), &[0.0, 10.0, 10.0, 0.0]);
    }

    #[test]
    fn zero_input_blocks_gradient() {
        // Subgradient convention: x = 0 → dx = 0.
        let mut r = ReLU::new();
        let x = tensor_from(1, 1, 1, 1, &[0.0]);
        let _ = r.forward(&x, Mode::Train);
        let dx = r.backward(&tensor_from(1, 1, 1, 1, &[5.0]));
        assert_eq!(dx.as_slice(), &[0.0]);
    }
}
