//! Softmax cross-entropy with label smoothing.
//!
//! The paper smooths labels with factor 0.1 for the ImageNet runs (§VI-C1).
//! The loss is averaged over the mini-batch, so the logits gradient carries
//! the `1/N` factor; K-FAC-eligible layers undo it when capturing `g`
//! (see [`crate::layer`]).

use kfac_tensor::Tensor4;

/// Mean softmax cross-entropy over the batch, with optional label
/// smoothing.
#[derive(Debug, Clone, Copy)]
pub struct CrossEntropyLoss {
    /// Smoothing factor `ε`: the target distribution is
    /// `(1 − ε)·onehot + ε/K`.
    pub label_smoothing: f32,
}

impl CrossEntropyLoss {
    /// Plain cross-entropy.
    pub fn new() -> Self {
        CrossEntropyLoss {
            label_smoothing: 0.0,
        }
    }

    /// Cross-entropy with label smoothing `eps` (the paper uses 0.1).
    pub fn with_smoothing(eps: f32) -> Self {
        assert!((0.0..1.0).contains(&eps));
        CrossEntropyLoss {
            label_smoothing: eps,
        }
    }

    /// Compute `(mean loss, dL/dlogits)` for logits `(N, K, 1, 1)` and
    /// integer class targets.
    pub fn forward(&self, logits: &Tensor4, targets: &[usize]) -> (f32, Tensor4) {
        let (n, k, h, w) = logits.shape();
        assert_eq!((h, w), (1, 1), "logits must be (N, K, 1, 1)");
        assert_eq!(targets.len(), n, "target count mismatch");
        let eps = self.label_smoothing;
        let off = eps / k as f32;
        let on = 1.0 - eps + off;

        let mut grad = Tensor4::zeros(n, k, 1, 1);
        let mut total = 0.0f64;
        let inv_n = 1.0 / n as f32;

        #[allow(clippy::needless_range_loop)] // `i` indexes logits rows and targets
        for i in 0..n {
            let row = &logits.as_slice()[i * k..(i + 1) * k];
            let target = targets[i];
            assert!(target < k, "target {target} out of range for {k} classes");

            // Numerically stable log-softmax.
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let sum_exp: f64 = row.iter().map(|&v| ((v - max) as f64).exp()).sum();
            let log_z = (sum_exp.ln() + max as f64) as f32;

            // Smoothed target distribution t: off everywhere, on at target.
            // loss_i = −Σ_c t_c · (logit_c − log_z)
            let mut loss_i = 0.0f64;
            for (c, &v) in row.iter().enumerate() {
                let t = if c == target { on } else { off };
                let logp = v - log_z;
                loss_i -= (t * logp) as f64;
                // d loss_i / d logit_c = softmax_c − t_c; mean over batch.
                let p = (((v - max) as f64).exp() / sum_exp) as f32;
                grad.as_mut_slice()[i * k + c] = (p - t) * inv_n;
            }
            total += loss_i;
        }

        ((total / n as f64) as f32, grad)
    }
}

impl Default for CrossEntropyLoss {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tensor_from;

    #[test]
    fn uniform_logits_give_log_k() {
        let loss = CrossEntropyLoss::new();
        let logits = tensor_from(2, 4, 1, 1, &[0.0; 8]);
        let (l, _g) = loss.forward(&logits, &[1, 3]);
        assert!((l - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_sample() {
        let loss = CrossEntropyLoss::with_smoothing(0.1);
        let logits = tensor_from(1, 3, 1, 1, &[1.0, -2.0, 0.5]);
        let (_l, g) = loss.forward(&logits, &[2]);
        let s: f32 = g.as_slice().iter().sum();
        assert!(s.abs() < 1e-6, "softmax − target sums to zero: {s}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let loss = CrossEntropyLoss::with_smoothing(0.1);
        let base = [1.0f32, -0.5, 2.0, 0.3, -1.0, 0.7];
        let targets = [2usize, 0];
        let logits = tensor_from(2, 3, 1, 1, &base);
        let (_l, g) = loss.forward(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut plus = base;
            plus[i] += eps;
            let mut minus = base;
            minus[i] -= eps;
            let (lp, _) = loss.forward(&tensor_from(2, 3, 1, 1, &plus), &targets);
            let (lm, _) = loss.forward(&tensor_from(2, 3, 1, 1, &minus), &targets);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - g.as_slice()[i]).abs() < 1e-3,
                "coord {i}: {numeric} vs {}",
                g.as_slice()[i]
            );
        }
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let loss = CrossEntropyLoss::new();
        let logits = tensor_from(1, 3, 1, 1, &[10.0, -10.0, -10.0]);
        let (l, _) = loss.forward(&logits, &[0]);
        assert!(l < 1e-3);
        let (l_wrong, _) = loss.forward(&tensor_from(1, 3, 1, 1, &[10.0, -10.0, -10.0]), &[1]);
        assert!(l_wrong > 10.0);
    }

    #[test]
    fn smoothing_lower_bounds_loss() {
        // With smoothing, even a perfect prediction keeps positive loss.
        let loss = CrossEntropyLoss::with_smoothing(0.1);
        let logits = tensor_from(1, 2, 1, 1, &[30.0, -30.0]);
        let (l, _) = loss.forward(&logits, &[0]);
        assert!(l > 1.0, "smoothed loss stays bounded away from zero: {l}");
    }

    #[test]
    #[should_panic(expected = "target 5 out of range")]
    fn bad_target_panics() {
        let loss = CrossEntropyLoss::new();
        let logits = tensor_from(1, 3, 1, 1, &[0.0; 3]);
        let _ = loss.forward(&logits, &[5]);
    }
}
