//! 2-D convolution (im2col + GEMM) with K-FAC capture.
//!
//! The K-FAC factors for convolution follow Grosse & Martens'
//! convolutional factorization (the paper's \[33\]): the activation factor is
//! the second moment of the receptive-field patches (the im2col rows,
//! bias-augmented) and the gradient factor is the second moment of the
//! per-position output gradients. The paper's implementation inherits this
//! from kfac-pytorch; we implement it directly.

use crate::im2col::{col2im_into, conv_out_dim, im2col_into};
use crate::layer::{Capture, KfacEligible, Layer, Mode};
use kfac_tensor::arena;
use kfac_tensor::gemm::{gemm_into, View};
use kfac_tensor::{init, Matrix, Rng64, Tensor4};

/// `Conv2d(c_in → c_out, k×k, stride, pad)`, square kernels.
pub struct Conv2d {
    name: String,
    c_in: usize,
    c_out: usize,
    k: usize,
    stride: usize,
    pad: usize,
    /// Row-major `c_out × (c_in·k·k)`.
    weight: Vec<f32>,
    bias: Option<Vec<f32>>,
    grad_weight: Vec<f32>,
    grad_bias: Option<Vec<f32>>,
    /// Cached patch matrix from the last training forward.
    cols: Option<Matrix>,
    in_shape: Option<(usize, usize, usize, usize)>,
    capture: Capture,
    /// Retired patch buffer, reused by the next forward (steady-state
    /// forwards reshape it in place instead of allocating).
    cols_pool: Option<Matrix>,
    /// Persistent GEMM scratch: forward output rows, backward gradient
    /// rows, and the backward patch-gradient matrix.
    y_rows: Matrix,
    gy_rows: Matrix,
    dcols: Matrix,
}

impl Conv2d {
    /// Create with Kaiming-normal weights (the ResNet initialization).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut Rng64,
    ) -> Self {
        assert!(c_in > 0 && c_out > 0 && k > 0 && stride > 0);
        let fan_in = c_in * k * k;
        let mut weight = vec![0.0; c_out * fan_in];
        init::kaiming_normal(&mut weight, fan_in, rng);
        let bias_v = if bias { Some(vec![0.0; c_out]) } else { None };
        Conv2d {
            name: name.into(),
            c_in,
            c_out,
            k,
            stride,
            pad,
            grad_weight: vec![0.0; c_out * fan_in],
            grad_bias: bias_v.as_ref().map(|b| vec![0.0; b.len()]),
            weight,
            bias: bias_v,
            cols: None,
            in_shape: None,
            capture: Capture::default(),
            cols_pool: None,
            y_rows: Matrix::zeros(0, 0),
            gy_rows: Matrix::zeros(0, 0),
            dcols: Matrix::zeros(0, 0),
        }
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Reshape NCHW gradient to GEMM row layout `(n·oh·ow) × c_out`,
    /// matching the im2col row order. Every element of `m` is written.
    fn grad_to_rows_into(grad: &Tensor4, m: &mut Matrix) {
        let (n, c, oh, ow) = grad.shape();
        m.reset_for(n * oh * ow, c);
        for ni in 0..n {
            for ci in 0..c {
                let plane = grad.plane(ni, ci);
                for oy in 0..oh {
                    for ox in 0..ow {
                        m[((ni * oh + oy) * ow + ox, ci)] = plane[oy * ow + ox];
                    }
                }
            }
        }
    }

    /// Reshape GEMM rows `(n·oh·ow) × c_out` back to NCHW.
    fn rows_to_tensor(rows: &Matrix, n: usize, c: usize, oh: usize, ow: usize) -> Tensor4 {
        let mut t = Tensor4::zeros(n, c, oh, ow);
        for ni in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = rows.row((ni * oh + oy) * ow + ox);
                    for (ci, &v) in row.iter().enumerate().take(c) {
                        *t.at_mut(ni, ci, oy, ox) = v;
                    }
                }
            }
        }
        t
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        let (n, c, h, w) = input.shape();
        assert_eq!(c, self.c_in, "channel mismatch in {}", self.name);
        let oh = conv_out_dim(h, self.k, self.stride, self.pad);
        let ow = conv_out_dim(w, self.k, self.stride, self.pad);

        // Reuse the retired patch buffer from the previous iteration.
        let mut cols = self.cols_pool.take().unwrap_or_else(|| Matrix::zeros(0, 0));
        im2col_into(input, self.k, self.stride, self.pad, &mut cols);

        // y = cols · Wᵀ, multiplying straight against the parameter slice.
        let rows = cols.rows();
        let fan_in = self.c_in * self.k * self.k;
        self.y_rows.reset_for(rows, self.c_out);
        gemm_into(
            View::new(cols.as_slice(), rows, fan_in),
            View::t(&self.weight, self.c_out, fan_in),
            self.y_rows.as_mut_slice(),
        );

        if let Some(b) = &self.bias {
            for r in 0..rows {
                let row = self.y_rows.row_mut(r);
                for (v, &bj) in row.iter_mut().zip(b.iter()) {
                    *v += bj;
                }
            }
        }

        let out = Self::rows_to_tensor(&self.y_rows, n, self.c_out, oh, ow);

        if mode == Mode::Train {
            if self.capture.enabled {
                // Bias-augmented patch matrix for the activation factor.
                self.capture.store_a_augmented(&cols, self.bias.is_some());
                self.capture.clear_g();
            }
            self.cols = Some(cols);
            self.in_shape = Some((n, c, h, w));
        } else {
            self.cols_pool = Some(cols);
        }

        out
    }

    fn backward(&mut self, grad_output: &Tensor4) -> Tensor4 {
        let cols = self.cols.take().expect("backward without forward");
        let in_shape = self.in_shape.expect("backward without forward");
        Self::grad_to_rows_into(grad_output, &mut self.gy_rows); // rows × c_out
        let gy = &self.gy_rows;
        let rows = gy.rows();
        let fan_in = self.c_in * self.k * self.k;

        if self.capture.enabled {
            // Undo the mean-loss 1/batch so G is the per-example gradient
            // covariance; batch is n, not rows = n·oh·ow.
            self.capture.store_g_scaled(gy, in_shape.0 as f32);
        }

        // dW = gyᵀ · cols  (c_out × c_in·k·k); the fresh product lands in
        // arena scratch and is accumulated into the persistent gradient.
        let mut dw = arena::take_matrix(self.c_out, fan_in);
        gemm_into(
            View::t(gy.as_slice(), rows, self.c_out),
            View::new(cols.as_slice(), rows, fan_in),
            dw.as_mut_slice(),
        );
        for (gw, d) in self.grad_weight.iter_mut().zip(dw.as_slice()) {
            *gw += d;
        }
        arena::recycle_matrix(dw);
        if let Some(gb) = &mut self.grad_bias {
            for r in 0..rows {
                for (b, &v) in gb.iter_mut().zip(gy.row(r)) {
                    *b += v;
                }
            }
        }

        // dX = col2im(gy · W)
        self.dcols.reset_for(rows, fan_in);
        gemm_into(
            View::new(gy.as_slice(), rows, self.c_out),
            View::new(&self.weight, self.c_out, fan_in),
            self.dcols.as_mut_slice(),
        );
        let mut dx = Tensor4::zeros(0, 0, 0, 0);
        col2im_into(
            &self.dcols,
            in_shape,
            self.k,
            self.stride,
            self.pad,
            &mut dx,
        );
        self.cols_pool = Some(cols);
        dx
    }

    fn output_shape(&self, input: (usize, usize, usize, usize)) -> (usize, usize, usize, usize) {
        let (n, _c, h, w) = input;
        (
            n,
            self.c_out,
            conv_out_dim(h, self.k, self.stride, self.pad),
            conv_out_dim(w, self.k, self.stride, self.pad),
        )
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        let wname = format!("{prefix}{}.weight", self.name);
        f(&wname, &mut self.weight, &mut self.grad_weight);
        if let (Some(b), Some(gb)) = (&mut self.bias, &mut self.grad_bias) {
            let bname = format!("{prefix}{}.bias", self.name);
            f(&bname, b, gb);
        }
    }

    fn set_capture(&mut self, on: bool) {
        self.capture.enabled = on;
        if on {
            self.capture.clear();
        }
    }

    fn collect_kfac<'a>(&'a mut self, out: &mut Vec<&'a mut dyn KfacEligible>) {
        out.push(self);
    }
}

impl KfacEligible for Conv2d {
    fn kfac_name(&self) -> String {
        self.name.clone()
    }

    fn factor_dims(&self) -> (usize, usize) {
        (
            self.c_in * self.k * self.k + usize::from(self.bias.is_some()),
            self.c_out,
        )
    }

    fn has_capture(&self) -> bool {
        self.capture.complete()
    }

    fn compute_factors(&self) -> (Matrix, Matrix) {
        self.capture.factors()
    }

    fn set_capture_dtype(&mut self, dtype: kfac_tensor::Dtype) {
        self.capture.dtype = dtype;
    }

    fn grad_matrix(&self) -> Matrix {
        let fan_in = self.c_in * self.k * self.k;
        let extra = usize::from(self.bias.is_some());
        let mut gm = Matrix::zeros(self.c_out, fan_in + extra);
        for o in 0..self.c_out {
            gm.row_mut(o)[..fan_in]
                .copy_from_slice(&self.grad_weight[o * fan_in..(o + 1) * fan_in]);
            if extra == 1 {
                gm.row_mut(o)[fan_in] = self.grad_bias.as_ref().expect("bias grad")[o];
            }
        }
        gm
    }

    fn set_grad_matrix(&mut self, grad: &Matrix) {
        let fan_in = self.c_in * self.k * self.k;
        let extra = usize::from(self.bias.is_some());
        assert_eq!(
            grad.shape(),
            (self.c_out, fan_in + extra),
            "preconditioned gradient shape mismatch in {}",
            self.name
        );
        for o in 0..self.c_out {
            self.grad_weight[o * fan_in..(o + 1) * fan_in].copy_from_slice(&grad.row(o)[..fan_in]);
            if extra == 1 {
                self.grad_bias.as_mut().expect("bias grad")[o] = grad.row(o)[fan_in];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::finite_diff_check;

    #[test]
    fn output_shape_same_padding() {
        let mut rng = Rng64::new(1);
        let c = Conv2d::new("c", 3, 8, 3, 1, 1, false, &mut rng);
        assert_eq!(c.output_shape((2, 3, 8, 8)), (2, 8, 8, 8));
    }

    #[test]
    fn output_shape_stride2() {
        let mut rng = Rng64::new(2);
        let c = Conv2d::new("c", 4, 8, 3, 2, 1, false, &mut rng);
        assert_eq!(c.output_shape((1, 4, 8, 8)), (1, 8, 4, 4));
    }

    #[test]
    fn gradient_check_3x3() {
        let mut rng = Rng64::new(3);
        let c = Conv2d::new("c", 2, 3, 3, 1, 1, true, &mut rng);
        finite_diff_check(Box::new(c), (2, 2, 5, 5), 5e-2, &mut rng);
    }

    #[test]
    fn gradient_check_stride2_no_bias() {
        let mut rng = Rng64::new(4);
        let c = Conv2d::new("c", 3, 4, 3, 2, 1, false, &mut rng);
        finite_diff_check(Box::new(c), (2, 3, 6, 6), 5e-2, &mut rng);
    }

    #[test]
    fn gradient_check_1x1() {
        let mut rng = Rng64::new(5);
        let c = Conv2d::new("c", 4, 2, 1, 1, 0, false, &mut rng);
        finite_diff_check(Box::new(c), (2, 4, 4, 4), 5e-2, &mut rng);
    }

    #[test]
    fn factor_dims_follow_kfc() {
        let mut rng = Rng64::new(6);
        let c = Conv2d::new("c", 16, 32, 3, 1, 1, false, &mut rng);
        assert_eq!(c.factor_dims(), (16 * 9, 32));
        let cb = Conv2d::new("cb", 16, 32, 3, 1, 1, true, &mut rng);
        assert_eq!(cb.factor_dims(), (16 * 9 + 1, 32));
    }

    #[test]
    fn capture_factor_shapes() {
        let mut rng = Rng64::new(7);
        let mut c = Conv2d::new("c", 2, 3, 3, 1, 1, true, &mut rng);
        c.set_capture(true);
        let x = crate::testutil::random_tensor((2, 2, 4, 4), &mut rng);
        let y = c.forward(&x, Mode::Train);
        let gy = crate::testutil::random_tensor(y.shape(), &mut rng);
        let _ = c.backward(&gy);
        assert!(c.has_capture());
        let (a, g) = c.compute_factors();
        assert_eq!(a.shape(), (19, 19)); // 2·3·3 + 1 bias
        assert_eq!(g.shape(), (3, 3));
        assert_eq!(a.asymmetry(), 0.0);
        assert_eq!(g.asymmetry(), 0.0);
    }

    #[test]
    fn grad_matrix_round_trip() {
        let mut rng = Rng64::new(8);
        let mut c = Conv2d::new("c", 1, 2, 2, 1, 0, true, &mut rng);
        for (i, g) in c.grad_weight.iter_mut().enumerate() {
            *g = i as f32;
        }
        c.grad_bias = Some(vec![100.0, 200.0]);
        let gm = c.grad_matrix();
        assert_eq!(gm.shape(), (2, 5));
        assert_eq!(gm.row(0), &[0.0, 1.0, 2.0, 3.0, 100.0]);
        c.set_grad_matrix(&gm);
        assert_eq!(c.grad_weight[7], 7.0);
        assert_eq!(c.grad_bias.as_ref().unwrap()[1], 200.0);
    }

    #[test]
    fn no_capture_when_disabled() {
        let mut rng = Rng64::new(9);
        let mut c = Conv2d::new("c", 1, 1, 1, 1, 0, false, &mut rng);
        let x = crate::testutil::random_tensor((1, 1, 2, 2), &mut rng);
        let y = c.forward(&x, Mode::Train);
        let _ = c.backward(&crate::testutil::random_tensor(y.shape(), &mut rng));
        assert!(!c.has_capture());
    }
}
