//! Residual blocks (He et al., the paper's \[13\]).
//!
//! `y = ReLU(main(x) + shortcut(x))` where `shortcut` is the identity or a
//! projection (1×1 conv + BN) when the main path changes shape.

use crate::layer::{KfacEligible, Layer, Mode};
use kfac_tensor::Tensor4;

/// One residual block: a main path, an optional projection shortcut, and
/// the post-addition ReLU.
pub struct ResidualBlock {
    main: Box<dyn Layer>,
    /// `None` means the identity shortcut.
    shortcut: Option<Box<dyn Layer>>,
    /// Mask of the final ReLU from the last training forward.
    relu_mask: Option<Vec<bool>>,
}

impl ResidualBlock {
    /// Create from a main path and an optional projection shortcut.
    pub fn new(main: Box<dyn Layer>, shortcut: Option<Box<dyn Layer>>) -> Self {
        ResidualBlock {
            main,
            shortcut,
            relu_mask: None,
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        let main_out = self.main.forward(input, mode);
        let short_out = match &mut self.shortcut {
            Some(s) => s.forward(input, mode),
            None => input.clone(),
        };
        assert_eq!(
            main_out.shape(),
            short_out.shape(),
            "residual add shape mismatch: main {:?} vs shortcut {:?}",
            main_out.shape(),
            short_out.shape()
        );

        let (n, c, h, w) = main_out.shape();
        let mut out = Tensor4::zeros(n, c, h, w);
        let mut mask = if mode == Mode::Train {
            vec![false; out.len()]
        } else {
            Vec::new()
        };
        for (i, ((o, &m), &s)) in out
            .as_mut_slice()
            .iter_mut()
            .zip(main_out.as_slice())
            .zip(short_out.as_slice())
            .enumerate()
        {
            let v = m + s;
            if v > 0.0 {
                *o = v;
                if mode == Mode::Train {
                    mask[i] = true;
                }
            }
        }
        if mode == Mode::Train {
            self.relu_mask = Some(mask);
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor4) -> Tensor4 {
        let mask = self
            .relu_mask
            .take()
            .expect("backward without training forward");
        let (n, c, h, w) = grad_output.shape();
        // Gradient through the final ReLU.
        let mut g = Tensor4::zeros(n, c, h, w);
        for ((o, &gv), &m) in g
            .as_mut_slice()
            .iter_mut()
            .zip(grad_output.as_slice())
            .zip(&mask)
        {
            if m {
                *o = gv;
            }
        }

        // The add fans the gradient into both branches.
        let d_main = self.main.backward(&g);
        let d_short = match &mut self.shortcut {
            Some(s) => s.backward(&g),
            None => g,
        };
        assert_eq!(d_main.shape(), d_short.shape());
        let mut dx = d_main;
        for (a, &b) in dx.as_mut_slice().iter_mut().zip(d_short.as_slice()) {
            *a += b;
        }
        dx
    }

    fn output_shape(&self, input: (usize, usize, usize, usize)) -> (usize, usize, usize, usize) {
        self.main.output_shape(input)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        self.main.visit_params(prefix, f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(prefix, f);
        }
    }

    fn set_capture(&mut self, on: bool) {
        self.main.set_capture(on);
        if let Some(s) = &mut self.shortcut {
            s.set_capture(on);
        }
    }

    fn collect_kfac<'a>(&'a mut self, out: &mut Vec<&'a mut dyn KfacEligible>) {
        self.main.collect_kfac(out);
        if let Some(s) = &mut self.shortcut {
            s.collect_kfac(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batchnorm::BatchNorm2d;
    use crate::conv::Conv2d;
    use crate::sequential::Sequential;
    use crate::testutil::finite_diff_check;
    use kfac_tensor::Rng64;

    fn basic_block(rng: &mut Rng64, c: usize) -> ResidualBlock {
        let main = Sequential::from_layers(vec![
            Box::new(Conv2d::new("conv1", c, c, 3, 1, 1, false, rng)),
            Box::new(BatchNorm2d::new("bn1", c)),
            Box::new(crate::activation::ReLU::new()),
            Box::new(Conv2d::new("conv2", c, c, 3, 1, 1, false, rng)),
            Box::new(BatchNorm2d::new("bn2", c)),
        ]);
        ResidualBlock::new(Box::new(main), None)
    }

    fn downsample_block(rng: &mut Rng64, c_in: usize, c_out: usize) -> ResidualBlock {
        let main = Sequential::from_layers(vec![
            Box::new(Conv2d::new("conv1", c_in, c_out, 3, 2, 1, false, rng)),
            Box::new(BatchNorm2d::new("bn1", c_out)),
            Box::new(crate::activation::ReLU::new()),
            Box::new(Conv2d::new("conv2", c_out, c_out, 3, 1, 1, false, rng)),
            Box::new(BatchNorm2d::new("bn2", c_out)),
        ]);
        let shortcut = Sequential::from_layers(vec![
            Box::new(Conv2d::new("down", c_in, c_out, 1, 2, 0, false, rng)),
            Box::new(BatchNorm2d::new("bnd", c_out)),
        ]);
        ResidualBlock::new(Box::new(main), Some(Box::new(shortcut)))
    }

    #[test]
    fn identity_block_gradient_check() {
        let mut rng = Rng64::new(1);
        let b = basic_block(&mut rng, 2);
        finite_diff_check(Box::new(b), (2, 2, 4, 4), 6e-2, &mut rng);
    }

    #[test]
    fn projection_block_gradient_check() {
        let mut rng = Rng64::new(2);
        let b = downsample_block(&mut rng, 2, 4);
        finite_diff_check(Box::new(b), (2, 2, 4, 4), 6e-2, &mut rng);
    }

    #[test]
    fn projection_block_changes_shape() {
        let mut rng = Rng64::new(3);
        let b = downsample_block(&mut rng, 2, 4);
        assert_eq!(b.output_shape((1, 2, 8, 8)), (1, 4, 4, 4));
    }

    #[test]
    fn collects_kfac_from_both_paths() {
        let mut rng = Rng64::new(4);
        let mut b = downsample_block(&mut rng, 2, 4);
        let mut v = Vec::new();
        b.collect_kfac(&mut v);
        // conv1, conv2 from main; down from shortcut. BN layers excluded.
        assert_eq!(v.len(), 3);
        assert_eq!(v[2].kfac_name(), "down");
    }
}
