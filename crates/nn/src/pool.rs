//! Pooling layers: max pooling and global average pooling.

use crate::layer::{KfacEligible, Layer, Mode};
use kfac_tensor::Tensor4;

/// `MaxPool2d(k, stride)` without padding.
pub struct MaxPool2d {
    k: usize,
    stride: usize,
    /// For each output element, the flat input offset of its argmax.
    argmax: Option<Vec<usize>>,
    in_shape: Option<(usize, usize, usize, usize)>,
}

impl MaxPool2d {
    /// Create a max-pool with square window `k` and the given stride.
    pub fn new(k: usize, stride: usize) -> Self {
        assert!(k > 0 && stride > 0);
        MaxPool2d {
            k,
            stride,
            argmax: None,
            in_shape: None,
        }
    }

    fn out_dims(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(h >= self.k && w >= self.k, "pool window larger than input");
        (
            (h - self.k) / self.stride + 1,
            (w - self.k) / self.stride + 1,
        )
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        let (n, c, h, w) = input.shape();
        let (oh, ow) = self.out_dims(h, w);
        let mut out = Tensor4::zeros(n, c, oh, ow);
        let mut argmax = vec![0usize; n * c * oh * ow];

        let mut oi = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                let plane = input.plane(ni, ci);
                let base = input.offset(ni, ci, 0, 0);
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_off = 0usize;
                        for ky in 0..self.k {
                            let iy = oy * self.stride + ky;
                            for kx in 0..self.k {
                                let ix = ox * self.stride + kx;
                                let v = plane[iy * w + ix];
                                if v > best {
                                    best = v;
                                    best_off = base + iy * w + ix;
                                }
                            }
                        }
                        *out.at_mut(ni, ci, oy, ox) = best;
                        argmax[oi] = best_off;
                        oi += 1;
                    }
                }
            }
        }

        if mode == Mode::Train {
            self.argmax = Some(argmax);
            self.in_shape = Some((n, c, h, w));
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor4) -> Tensor4 {
        let argmax = self.argmax.take().expect("backward without forward");
        let (n, c, h, w) = self.in_shape.expect("backward without forward");
        let mut dx = Tensor4::zeros(n, c, h, w);
        // grad_output iterates in the same (n, c, oy, ox) order as argmax
        // was recorded.
        for (&g, &off) in grad_output.as_slice().iter().zip(&argmax) {
            dx.as_mut_slice()[off] += g;
        }
        dx
    }

    fn output_shape(&self, input: (usize, usize, usize, usize)) -> (usize, usize, usize, usize) {
        let (n, c, h, w) = input;
        let (oh, ow) = self.out_dims(h, w);
        (n, c, oh, ow)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {}

    fn set_capture(&mut self, _on: bool) {}

    fn collect_kfac<'a>(&'a mut self, _out: &mut Vec<&'a mut dyn KfacEligible>) {}
}

/// Global average pooling: `(N, C, H, W) → (N, C, 1, 1)`, the head of
/// every ResNet.
pub struct GlobalAvgPool {
    in_shape: Option<(usize, usize, usize, usize)>,
}

impl GlobalAvgPool {
    /// New global average pool.
    pub fn new() -> Self {
        GlobalAvgPool { in_shape: None }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        let (n, c, h, w) = input.shape();
        let mut out = Tensor4::zeros(n, c, 1, 1);
        let inv = 1.0 / (h * w) as f32;
        for ni in 0..n {
            for ci in 0..c {
                let s: f32 = input.plane(ni, ci).iter().sum();
                *out.at_mut(ni, ci, 0, 0) = s * inv;
            }
        }
        if mode == Mode::Train {
            self.in_shape = Some((n, c, h, w));
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = self.in_shape.take().expect("backward without forward");
        let inv = 1.0 / (h * w) as f32;
        let mut dx = Tensor4::zeros(n, c, h, w);
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_output.at(ni, ci, 0, 0) * inv;
                for v in dx.plane_mut(ni, ci) {
                    *v = g;
                }
            }
        }
        dx
    }

    fn output_shape(&self, input: (usize, usize, usize, usize)) -> (usize, usize, usize, usize) {
        (input.0, input.1, 1, 1)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {}

    fn set_capture(&mut self, _on: bool) {}

    fn collect_kfac<'a>(&'a mut self, _out: &mut Vec<&'a mut dyn KfacEligible>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{finite_diff_check, tensor_from};
    use kfac_tensor::Rng64;

    #[test]
    fn maxpool_known_values() {
        let mut p = MaxPool2d::new(2, 2);
        let x = tensor_from(
            1,
            1,
            4,
            4,
            &[
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let y = p.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), (1, 1, 2, 2));
        assert_eq!(y.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool2d::new(2, 2);
        let x = tensor_from(1, 1, 2, 2, &[1.0, 9.0, 3.0, 4.0]);
        let _ = p.forward(&x, Mode::Train);
        let dx = p.backward(&tensor_from(1, 1, 1, 1, &[5.0]));
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_gradient_check() {
        let mut rng = Rng64::new(1);
        let p = MaxPool2d::new(2, 2);
        finite_diff_check(Box::new(p), (2, 2, 4, 4), 5e-2, &mut rng);
    }

    #[test]
    fn gap_known_values() {
        let mut p = GlobalAvgPool::new();
        let x = tensor_from(1, 2, 2, 2, &[1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0]);
        let y = p.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[2.5, 25.0]);
    }

    #[test]
    fn gap_gradient_check() {
        let mut rng = Rng64::new(2);
        let p = GlobalAvgPool::new();
        finite_diff_check(Box::new(p), (2, 3, 3, 3), 5e-2, &mut rng);
    }
}
