//! Runnable ResNet builders (He et al., the paper's \[13\]).
//!
//! Two families, matching the paper's benchmarks:
//!
//! * **CIFAR-style** ([`resnet_cifar`]): 3×3 stem, three stages of basic
//!   blocks with `6n+2` layers — `n = 3` is ResNet-20, `n = 5` is the
//!   paper's ResNet-32.
//! * **ImageNet-style** ([`resnet_bottleneck`]): bottleneck blocks with
//!   expansion 4 in four stages — `[3,4,6,3]` is ResNet-50, `[3,4,23,3]`
//!   ResNet-101, `[3,8,36,3]` ResNet-152.
//!
//! Because this reproduction trains on CPU, the builders take a base width
//! and input size; the *architecture* (stage structure, stride pattern,
//! block types, K-FAC-eligible layer inventory) is exactly the paper's
//! while the channel counts are scaled to keep runs tractable. The
//! full-size dimension tables used by the scaling simulator live in
//! [`crate::arch`] and are not scaled.

use crate::activation::ReLU;
use crate::batchnorm::BatchNorm2d;
use crate::conv::Conv2d;
use crate::linear::Linear;
use crate::pool::GlobalAvgPool;
use crate::reshape::Flatten;
use crate::residual::ResidualBlock;
use crate::sequential::Sequential;
use kfac_tensor::Rng64;

/// Basic (two 3×3 convs) residual block.
fn basic_block(
    prefix: &str,
    c_in: usize,
    c_out: usize,
    stride: usize,
    rng: &mut Rng64,
) -> ResidualBlock {
    let main = Sequential::from_layers(vec![
        Box::new(Conv2d::new(
            format!("{prefix}.conv1"),
            c_in,
            c_out,
            3,
            stride,
            1,
            false,
            rng,
        )),
        Box::new(BatchNorm2d::new(format!("{prefix}.bn1"), c_out)),
        Box::new(ReLU::new()),
        Box::new(Conv2d::new(
            format!("{prefix}.conv2"),
            c_out,
            c_out,
            3,
            1,
            1,
            false,
            rng,
        )),
        Box::new(BatchNorm2d::new(format!("{prefix}.bn2"), c_out)),
    ]);
    let shortcut = if stride != 1 || c_in != c_out {
        Some(Box::new(Sequential::from_layers(vec![
            Box::new(Conv2d::new(
                format!("{prefix}.down"),
                c_in,
                c_out,
                1,
                stride,
                0,
                false,
                rng,
            )),
            Box::new(BatchNorm2d::new(format!("{prefix}.bnd"), c_out)),
        ])) as Box<dyn crate::layer::Layer>)
    } else {
        None
    };
    ResidualBlock::new(Box::new(main), shortcut)
}

/// Bottleneck (1×1 → 3×3 → 1×1, expansion 4) residual block.
fn bottleneck_block(
    prefix: &str,
    c_in: usize,
    c_mid: usize,
    stride: usize,
    rng: &mut Rng64,
) -> ResidualBlock {
    let c_out = c_mid * 4;
    let main = Sequential::from_layers(vec![
        Box::new(Conv2d::new(
            format!("{prefix}.conv1"),
            c_in,
            c_mid,
            1,
            1,
            0,
            false,
            rng,
        )),
        Box::new(BatchNorm2d::new(format!("{prefix}.bn1"), c_mid)),
        Box::new(ReLU::new()),
        Box::new(Conv2d::new(
            format!("{prefix}.conv2"),
            c_mid,
            c_mid,
            3,
            stride,
            1,
            false,
            rng,
        )),
        Box::new(BatchNorm2d::new(format!("{prefix}.bn2"), c_mid)),
        Box::new(ReLU::new()),
        Box::new(Conv2d::new(
            format!("{prefix}.conv3"),
            c_mid,
            c_out,
            1,
            1,
            0,
            false,
            rng,
        )),
        Box::new(BatchNorm2d::new(format!("{prefix}.bn3"), c_out)),
    ]);
    let shortcut = if stride != 1 || c_in != c_out {
        Some(Box::new(Sequential::from_layers(vec![
            Box::new(Conv2d::new(
                format!("{prefix}.down"),
                c_in,
                c_out,
                1,
                stride,
                0,
                false,
                rng,
            )),
            Box::new(BatchNorm2d::new(format!("{prefix}.bnd"), c_out)),
        ])) as Box<dyn crate::layer::Layer>)
    } else {
        None
    };
    ResidualBlock::new(Box::new(main), shortcut)
}

/// CIFAR-style ResNet with `6n+2` layers: `n` basic blocks per stage,
/// widths `[base, 2·base, 4·base]`, strides `[1, 2, 2]`.
///
/// `resnet_cifar(3, 16, 10, 3, …)` is the classic ResNet-20;
/// `resnet_cifar(5, 16, 10, 3, …)` is the paper's ResNet-32.
pub fn resnet_cifar(
    n: usize,
    base_width: usize,
    num_classes: usize,
    in_channels: usize,
    rng: &mut Rng64,
) -> Sequential {
    assert!(n >= 1 && base_width >= 1);
    let mut layers: Vec<Box<dyn crate::layer::Layer>> = vec![
        Box::new(Conv2d::new(
            "stem.conv",
            in_channels,
            base_width,
            3,
            1,
            1,
            false,
            rng,
        )),
        Box::new(BatchNorm2d::new("stem.bn", base_width)),
        Box::new(ReLU::new()),
    ];
    let widths = [base_width, base_width * 2, base_width * 4];
    let mut c_in = base_width;
    for (si, &w) in widths.iter().enumerate() {
        for bi in 0..n {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            let prefix = format!("s{si}.b{bi}");
            layers.push(Box::new(basic_block(&prefix, c_in, w, stride, rng)));
            c_in = w;
        }
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(Flatten::new()));
    layers.push(Box::new(Linear::new("fc", c_in, num_classes, true, rng)));
    Sequential::from_layers(layers)
}

/// ImageNet-style bottleneck ResNet for small inputs: 3×3 stem (no
/// max-pool; appropriate below 64×64), four stages with widths
/// `[base, 2·base, 4·base, 8·base]` and expansion 4.
///
/// `blocks = [3,4,6,3]` reproduces ResNet-50's structure, `[3,4,23,3]`
/// ResNet-101's, `[3,8,36,3]` ResNet-152's. `base_width = 64` gives the
/// paper's channel counts; the experiments use smaller bases.
pub fn resnet_bottleneck(
    blocks: &[usize; 4],
    base_width: usize,
    num_classes: usize,
    in_channels: usize,
    rng: &mut Rng64,
) -> Sequential {
    let mut layers: Vec<Box<dyn crate::layer::Layer>> = vec![
        Box::new(Conv2d::new(
            "stem.conv",
            in_channels,
            base_width,
            3,
            1,
            1,
            false,
            rng,
        )),
        Box::new(BatchNorm2d::new("stem.bn", base_width)),
        Box::new(ReLU::new()),
    ];
    let mut c_in = base_width;
    for (si, &nblocks) in blocks.iter().enumerate() {
        let c_mid = base_width << si;
        for bi in 0..nblocks {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            let prefix = format!("s{si}.b{bi}");
            layers.push(Box::new(bottleneck_block(
                &prefix, c_in, c_mid, stride, rng,
            )));
            c_in = c_mid * 4;
        }
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(Flatten::new()));
    layers.push(Box::new(Linear::new("fc", c_in, num_classes, true, rng)));
    Sequential::from_layers(layers)
}

/// Block counts for the paper's three ImageNet models.
pub fn bottleneck_blocks(depth: usize) -> [usize; 4] {
    match depth {
        50 => [3, 4, 6, 3],
        101 => [3, 4, 23, 3],
        152 => [3, 8, 36, 3],
        other => panic!("unsupported bottleneck ResNet depth {other}"),
    }
}

/// ImageNet-style *basic-block* ResNet for small inputs: four stages of
/// two-conv blocks, widths `[base, 2·base, 4·base, 8·base]`.
///
/// `blocks = [2,2,2,2]` reproduces ResNet-18's structure, `[3,4,6,3]`
/// ResNet-34's (the model the paper used during development, §VI-B).
pub fn resnet_basic(
    blocks: &[usize; 4],
    base_width: usize,
    num_classes: usize,
    in_channels: usize,
    rng: &mut Rng64,
) -> Sequential {
    let mut layers: Vec<Box<dyn crate::layer::Layer>> = vec![
        Box::new(Conv2d::new(
            "stem.conv",
            in_channels,
            base_width,
            3,
            1,
            1,
            false,
            rng,
        )),
        Box::new(BatchNorm2d::new("stem.bn", base_width)),
        Box::new(ReLU::new()),
    ];
    let mut c_in = base_width;
    for (si, &nblocks) in blocks.iter().enumerate() {
        let width = base_width << si;
        for bi in 0..nblocks {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            let prefix = format!("s{si}.b{bi}");
            layers.push(Box::new(basic_block(&prefix, c_in, width, stride, rng)));
            c_in = width;
        }
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(Flatten::new()));
    layers.push(Box::new(Linear::new("fc", c_in, num_classes, true, rng)));
    Sequential::from_layers(layers)
}

/// Block counts for the basic-block ImageNet models.
pub fn basic_blocks(depth: usize) -> [usize; 4] {
    match depth {
        18 => [2, 2, 2, 2],
        34 => [3, 4, 6, 3],
        other => panic!("unsupported basic ResNet depth {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Mode};
    use crate::testutil::random_tensor;

    #[test]
    fn resnet20_shapes_and_layer_count() {
        let mut rng = Rng64::new(1);
        let mut m = resnet_cifar(3, 4, 10, 3, &mut rng);
        assert_eq!(m.output_shape((2, 3, 16, 16)), (2, 10, 1, 1));
        // 6n+2 weighted layers: stem + 18 convs + fc = 20, plus 2 downsample
        // projections (not counted in the "20" naming convention).
        let mut kfac = Vec::new();
        m.collect_kfac(&mut kfac);
        assert_eq!(kfac.len(), 1 + 18 + 2 + 1);
    }

    #[test]
    fn resnet32_has_6n_plus_2_structure() {
        let mut rng = Rng64::new(2);
        let mut m = resnet_cifar(5, 4, 10, 3, &mut rng);
        let mut kfac = Vec::new();
        m.collect_kfac(&mut kfac);
        // stem + 30 block convs + 2 projections + fc.
        assert_eq!(kfac.len(), 1 + 30 + 2 + 1);
    }

    #[test]
    fn forward_backward_runs() {
        let mut rng = Rng64::new(3);
        let mut m = resnet_cifar(1, 4, 10, 3, &mut rng);
        let x = random_tensor((2, 3, 8, 8), &mut rng);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.shape(), (2, 10, 1, 1));
        let dx = m.backward(&y);
        assert_eq!(dx.shape(), (2, 3, 8, 8));
        assert!(dx.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn bottleneck_resnet50_structure() {
        let mut rng = Rng64::new(4);
        let mut m = resnet_bottleneck(&bottleneck_blocks(50), 8, 10, 3, &mut rng);
        assert_eq!(m.output_shape((1, 3, 16, 16)), (1, 10, 1, 1));
        let mut kfac = Vec::new();
        m.collect_kfac(&mut kfac);
        // stem + 3·16 block convs + 4 projections + fc = 53 + 4 = 54? Count:
        // blocks 3+4+6+3 = 16, each 3 convs = 48; projections: one per
        // stage = 4; stem 1; fc 1 → 54.
        assert_eq!(kfac.len(), 54);
    }

    #[test]
    fn bottleneck_expansion_widths() {
        let mut rng = Rng64::new(5);
        let m = resnet_bottleneck(&bottleneck_blocks(50), 8, 10, 3, &mut rng);
        // Final features = 8·8·4 = 256 → GAP → fc 256→10.
        assert_eq!(m.output_shape((1, 3, 32, 32)), (1, 10, 1, 1));
    }

    #[test]
    fn deeper_models_have_more_layers() {
        let mut rng = Rng64::new(6);
        let counts: Vec<usize> = [50usize, 101, 152]
            .iter()
            .map(|&d| {
                let mut m = resnet_bottleneck(&bottleneck_blocks(d), 4, 10, 3, &mut rng);
                let mut k = Vec::new();
                m.collect_kfac(&mut k);
                k.len()
            })
            .collect();
        assert!(counts[0] < counts[1] && counts[1] < counts[2]);
    }

    #[test]
    fn unique_param_names() {
        let mut rng = Rng64::new(7);
        let mut m = resnet_cifar(2, 4, 10, 3, &mut rng);
        let mut names = std::collections::HashSet::new();
        m.visit_params("", &mut |n, _, _| {
            assert!(names.insert(n.to_string()), "duplicate param name {n}");
        });
        assert!(names.len() > 20);
    }

    #[test]
    #[should_panic(expected = "unsupported bottleneck ResNet depth")]
    fn bad_depth_panics() {
        let _ = bottleneck_blocks(34);
    }

    #[test]
    fn resnet18_structure() {
        let mut rng = Rng64::new(8);
        let mut m = resnet_basic(&basic_blocks(18), 4, 10, 3, &mut rng);
        assert_eq!(m.output_shape((1, 3, 16, 16)), (1, 10, 1, 1));
        let mut kfac = Vec::new();
        m.collect_kfac(&mut kfac);
        // stem + 16 block convs + 3 projections + fc.
        assert_eq!(kfac.len(), 1 + 16 + 3 + 1);
    }

    #[test]
    fn resnet34_forward_backward() {
        let mut rng = Rng64::new(9);
        let mut m = resnet_basic(&basic_blocks(34), 4, 10, 3, &mut rng);
        let x = random_tensor((1, 3, 8, 8), &mut rng);
        let y = m.forward(&x, Mode::Train);
        assert_eq!(y.shape(), (1, 10, 1, 1));
        let dx = m.backward(&y);
        assert_eq!(dx.shape(), (1, 3, 8, 8));
    }

    #[test]
    #[should_panic(expected = "unsupported basic ResNet depth")]
    fn bad_basic_depth_panics() {
        let _ = basic_blocks(50);
    }
}
