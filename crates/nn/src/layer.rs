//! The layer abstraction: explicit forward/backward with K-FAC capture.
//!
//! The paper's implementation registers PyTorch hooks "to the input and
//! output of each layer to save the activation of the previous layer and
//! gradient with respect to the output of the current layer" (§IV-B).
//! Here capture is a first-class part of the [`Layer`] contract instead:
//! when capture is enabled, K-FAC-eligible layers ([`KfacEligible`]) stash
//! the bias-augmented input-activation matrix `ā` during `forward` and the
//! output-gradient matrix `g` during `backward`, from which the Kronecker
//! factors `A = āᵀā / m` and `G` are computed on demand.
//!
//! Only `Linear` and `Conv2d` are K-FAC eligible, matching §V: "Our
//! implementation supports K-FAC updates for Linear and Conv2D layers. All
//! unsupported layers are ignored by the K-FAC preconditioner and updated
//! normally using the user's choice of optimizer."

use kfac_tensor::{Dtype, HalfMatrix, Matrix, Tensor4};

/// Whether the network is training (batch statistics, capture allowed) or
/// evaluating (running statistics, no capture).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training pass: BatchNorm uses batch statistics and updates running
    /// averages; K-FAC capture honours the layer's capture flag.
    Train,
    /// Evaluation pass: running statistics, never captures.
    Eval,
}

/// A differentiable network component.
///
/// Layers own their parameters, their parameter gradients, and whatever
/// activations they must cache between `forward` and `backward`. The
/// caller guarantees the usual discipline: `backward` follows the
/// `forward` whose activations are cached, with a gradient tensor shaped
/// like that forward's output.
pub trait Layer: Send {
    /// Compute the layer output. In `Mode::Train` the layer caches what it
    /// needs for the next `backward`.
    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4;

    /// Back-propagate: accumulate parameter gradients and return the loss
    /// gradient with respect to this layer's input.
    fn backward(&mut self, grad_output: &Tensor4) -> Tensor4;

    /// Output shape for a given input shape (used to assemble models and
    /// to size buffers without running data through).
    fn output_shape(&self, input: (usize, usize, usize, usize)) -> (usize, usize, usize, usize);

    /// Visit every `(name, value, grad)` parameter triple. `prefix` scopes
    /// names so containers produce unique dotted paths
    /// (`"stage1.block0.conv1.weight"`).
    #[allow(clippy::type_complexity)] // the visitor signature IS the API
    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32]));

    /// Enable or disable K-FAC capture on this layer and all children.
    ///
    /// The trainer turns capture on only for iterations in which the
    /// preconditioner will recompute factors (the `10 × kfac-update-freq`
    /// schedule of §V-C), so non-factor iterations pay no capture cost —
    /// the same optimization the paper's hook management performs.
    fn set_capture(&mut self, on: bool);

    /// Collect mutable handles to the K-FAC-eligible (sub-)layers in
    /// deterministic structural order. Every rank builds an identical
    /// model, so index order is a consistent cross-rank layer identifier
    /// (the paper's layer index `i` in Algorithm 1).
    fn collect_kfac<'a>(&'a mut self, out: &mut Vec<&'a mut dyn KfacEligible>);

    /// Zero every parameter gradient.
    fn zero_grad(&mut self) {
        self.visit_params("", &mut |_, _, g| {
            for v in g.iter_mut() {
                *v = 0.0;
            }
        });
    }

    /// Total parameter count.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params("", &mut |_, v, _| n += v.len());
        n
    }
}

/// A layer the K-FAC preconditioner can handle (Linear, Conv2d).
///
/// The preconditioner drives these methods from Algorithm 1:
/// `compute_factors` (line 6), then after the eigendecompositions are
/// exchanged, `grad_matrix`/`set_grad_matrix` around the local
/// preconditioning (line 20).
pub trait KfacEligible {
    /// Debug identifier.
    fn kfac_name(&self) -> String;

    /// `(dim_A, dim_G)`: the activation-factor dimension (input features,
    /// +1 if the layer has a bias) and gradient-factor dimension (output
    /// features).
    fn factor_dims(&self) -> (usize, usize);

    /// True when both activation and gradient captures from the same
    /// iteration are available.
    fn has_capture(&self) -> bool;

    /// Compute the Kronecker factors `(A, G)` from the captured tensors.
    ///
    /// `A = āᵀ ā / m` over the `m` captured rows (batch for Linear,
    /// batch × spatial positions for Conv2d, per Grosse & Martens'
    /// convolutional factorization) and `G = ĝᵀ ĝ / m` with the
    /// mean-loss scaling folded in.
    ///
    /// # Panics
    /// Panics if `has_capture()` is false.
    fn compute_factors(&self) -> (Matrix, Matrix);

    /// The combined weight(+bias) gradient as the `dim_G × dim_A` matrix
    /// the preconditioner operates on (bias gradient is the final column).
    fn grad_matrix(&self) -> Matrix;

    /// Write a preconditioned gradient back into the layer's parameter
    /// gradients (inverse of [`grad_matrix`](KfacEligible::grad_matrix)).
    fn set_grad_matrix(&mut self, grad: &Matrix);

    /// Parameter count covered by this factor pair (used by the placement
    /// policies and the Table VI imbalance analysis).
    fn kfac_param_count(&self) -> usize {
        let (a, g) = self.factor_dims();
        a * g
    }

    /// Select the capture storage dtype. [`Dtype::Bf16`] halves capture
    /// bytes (for conv layers the capture of the im2col patch matrix IS
    /// the half-width scratch) and routes the factor Grams through the
    /// bf16-packed f32-accumulate GEMM. The default implementation
    /// ignores the request, so custom `KfacEligible` impls stay f32.
    fn set_capture_dtype(&mut self, _dtype: Dtype) {}
}

/// Storage for one captured-iteration pair used by `Linear`/`Conv2d`.
///
/// With `dtype == Dtype::Bf16` the captured rows live in [`HalfMatrix`]
/// storage (`a16`/`g16`) at half the bytes; the f32 slots stay empty and
/// `compute_factors` runs the bf16 Gram kernels instead. The f32 path is
/// untouched by the dtype plumbing (bitwise-identical default).
#[derive(Debug, Default)]
pub struct Capture {
    /// Whether capture is currently enabled.
    pub enabled: bool,
    /// Capture storage width (f32 default, bf16 opt-in).
    pub dtype: Dtype,
    /// Bias-augmented activation rows `ā` (m × dim_A), f32 storage.
    pub a: Option<Matrix>,
    /// Output-gradient rows `ĝ` (m × dim_G), mean-loss scaling already
    /// undone (multiplied by batch size), f32 storage.
    pub g: Option<Matrix>,
    /// bf16 activation capture (used when `dtype == Bf16`).
    pub a16: Option<HalfMatrix>,
    /// bf16 gradient capture (used when `dtype == Bf16`).
    pub g16: Option<HalfMatrix>,
}

impl Capture {
    /// Both halves captured (in whichever storage width)?
    pub fn complete(&self) -> bool {
        (self.a.is_some() || self.a16.is_some()) && (self.g.is_some() || self.g16.is_some())
    }

    /// Drop stale captures (called when capture is re-enabled),
    /// returning bf16 storage to the arena's pool.
    pub fn clear(&mut self) {
        self.a = None;
        self.g = None;
        if let Some(h) = self.a16.take() {
            h.recycle();
        }
        if let Some(h) = self.g16.take() {
            h.recycle();
        }
    }

    /// Drop only the gradient half (a forward pass invalidates the
    /// previous iteration's `g` but keeps its own fresh `a`).
    pub fn clear_g(&mut self) {
        self.g = None;
        if let Some(h) = self.g16.take() {
            h.recycle();
        }
    }

    /// Stash the activation rows, appending a homogeneous `1` column when
    /// `bias` is set (the bias-folding trick of §II-C). Reuses the
    /// previous capture's allocation (f32 buffer or pooled u16 storage),
    /// so steady-state capture iterations allocate nothing.
    pub fn store_a_augmented(&mut self, x: &Matrix, bias: bool) {
        if self.dtype == Dtype::Bf16 {
            if let Some(h) = self.a16.take() {
                h.recycle();
            }
            self.a16 = Some(HalfMatrix::from_augmented(x, bias));
            return;
        }
        let extra = usize::from(bias);
        let mut a = self.a.take().unwrap_or_else(|| Matrix::zeros(0, 0));
        a.reset_for(x.rows(), x.cols() + extra);
        for r in 0..x.rows() {
            let row = a.row_mut(r);
            row[..x.cols()].copy_from_slice(x.row(r));
            if extra == 1 {
                row[x.cols()] = 1.0;
            }
        }
        self.a = Some(a);
    }

    /// Stash the output-gradient rows scaled by `scale` (the batch size,
    /// undoing the mean-loss 1/batch). Reuses the previous capture's
    /// allocation.
    pub fn store_g_scaled(&mut self, gy: &Matrix, scale: f32) {
        if self.dtype == Dtype::Bf16 {
            if let Some(h) = self.g16.take() {
                h.recycle();
            }
            self.g16 = Some(HalfMatrix::from_scaled(gy, scale));
            return;
        }
        let mut g = self.g.take().unwrap_or_else(|| Matrix::zeros(0, 0));
        g.reset_for(gy.rows(), gy.cols());
        for (d, &s) in g.as_mut_slice().iter_mut().zip(gy.as_slice()) {
            *d = s * scale;
        }
        self.g = Some(g);
    }

    /// The factors `(A, G) = (āᵀā/m, ĝᵀĝ/m)` from whichever storage
    /// holds the capture — the shared implementation behind
    /// `Linear`/`Conv2d::compute_factors`. The bf16 path runs the
    /// bf16-packed f32-accumulate Gram kernels.
    pub fn factors(&self) -> (Matrix, Matrix) {
        use kfac_tensor::arena;
        if let (Some(a), Some(g)) = (&self.a16, &self.g16) {
            let m = a.rows() as f32;
            let mut fa = arena::take_matrix(a.cols(), a.cols());
            a.gram_into(&mut fa);
            fa.scale(1.0 / m);
            let mut fg = arena::take_matrix(g.cols(), g.cols());
            g.gram_into(&mut fg);
            fg.scale(1.0 / m);
            return (fa, fg);
        }
        let a = self.a.as_ref().expect("activation not captured");
        let g = self.g.as_ref().expect("gradient not captured");
        let m = a.rows() as f32;
        // Arena-backed factor scratch, recycled by the preconditioner
        // after the running-average fold (see `Kfac::factor_update_layer`).
        let mut fa = arena::take_matrix(a.cols(), a.cols());
        a.gram_into(&mut fa);
        fa.scale(1.0 / m);
        let mut fg = arena::take_matrix(g.cols(), g.cols());
        g.gram_into(&mut fg);
        fg.scale(1.0 / m);
        (fa, fg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_lifecycle() {
        let mut c = Capture::default();
        assert!(!c.complete());
        c.a = Some(Matrix::zeros(2, 2));
        assert!(!c.complete());
        c.g = Some(Matrix::zeros(2, 3));
        assert!(c.complete());
        c.clear();
        assert!(!c.complete());
    }
}
