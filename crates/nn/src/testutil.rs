//! Shared test helpers: finite-difference gradient checking.
//!
//! Every layer's `backward` is validated against central finite
//! differences of its `forward` — the standard correctness oracle for
//! hand-written autograd. The check perturbs a sample of parameters and
//! input coordinates, so it stays fast even for convolution layers.

use crate::layer::{Layer, Mode};
use kfac_tensor::{Rng64, Tensor4};

/// Build a tensor from literal data (test convenience).
pub fn tensor_from(n: usize, c: usize, h: usize, w: usize, data: &[f32]) -> Tensor4 {
    Tensor4::from_vec(n, c, h, w, data.to_vec())
}

/// Random tensor with standard-normal entries.
pub fn random_tensor(shape: (usize, usize, usize, usize), rng: &mut Rng64) -> Tensor4 {
    let (n, c, h, w) = shape;
    let data = (0..n * c * h * w).map(|_| rng.normal_f32()).collect();
    Tensor4::from_vec(n, c, h, w, data)
}

/// Scalar test loss: `L = Σᵢ out[i] · proj[i]`, whose gradient w.r.t. the
/// output is exactly `proj` — lets us drive `backward` with a known
/// upstream gradient.
fn projected_loss(out: &Tensor4, proj: &[f32]) -> f64 {
    out.as_slice()
        .iter()
        .zip(proj)
        .map(|(&o, &p)| o as f64 * p as f64)
        .sum()
}

/// Two-step central difference with kink detection.
///
/// ReLU and max-pooling make the loss piecewise linear; a finite-difference
/// step that straddles a kink produces a meaningless in-between slope. We
/// evaluate at two step sizes and skip coordinates where the two estimates
/// disagree (the standard non-smoothness guard).
fn robust_numeric_grad(eval: &mut dyn FnMut(f32) -> f64, eps: f32) -> Option<f32> {
    let d1 = ((eval(eps) - eval(-eps)) / (2.0 * eps as f64)) as f32;
    let half = eps / 2.0;
    let d2 = ((eval(half) - eval(-half)) / (2.0 * half as f64)) as f32;
    if (d1 - d2).abs() > 0.02 * d1.abs().max(d2.abs()).max(1.0) {
        None // kink detected: skip this coordinate
    } else {
        Some(d2)
    }
}

/// Check `layer.backward` against central finite differences.
///
/// Verifies (a) every parameter gradient (sampled, up to 48 coordinates
/// per parameter) and (b) the input gradient (up to 48 coordinates).
/// `tol` is a relative tolerance on each coordinate with an absolute
/// floor, appropriate for f32 forward passes. Coordinates sitting on
/// piecewise-linear kinks (ReLU boundaries, pooling argmax ties) are
/// detected and skipped.
pub fn finite_diff_check(
    mut layer: Box<dyn Layer>,
    in_shape: (usize, usize, usize, usize),
    tol: f32,
    rng: &mut Rng64,
) {
    let x = random_tensor(in_shape, rng);
    let out_shape = layer.output_shape(in_shape);
    let out_len = out_shape.0 * out_shape.1 * out_shape.2 * out_shape.3;
    let proj: Vec<f32> = (0..out_len).map(|_| rng.normal_f32()).collect();

    // Analytic gradients.
    layer.zero_grad();
    let out = layer.forward(&x, Mode::Train);
    assert_eq!(out.len(), out_len, "output_shape disagrees with forward");
    let grad_out = Tensor4::from_vec(
        out_shape.0,
        out_shape.1,
        out_shape.2,
        out_shape.3,
        proj.clone(),
    );
    let grad_in = layer.backward(&grad_out);

    // Snapshot analytic parameter gradients.
    let mut param_grads: Vec<(String, Vec<f32>)> = Vec::new();
    layer.visit_params("", &mut |name, _v, g| {
        param_grads.push((name.to_string(), g.to_vec()));
    });

    let eps = 2e-3f32; // small enough to rarely straddle ReLU kinks, central difference

    // (a) Parameter gradients.
    for (pi, (pname, analytic)) in param_grads.iter().enumerate() {
        let n_coords = analytic.len();
        let samples = n_coords.min(48);
        for s in 0..samples {
            // Deterministic stratified coordinate sample.
            let coord = s * n_coords / samples;
            let mut eval = |delta: f32| -> f64 {
                let mut idx = 0usize;
                layer.visit_params("", &mut |_n, v, _g| {
                    if idx == pi {
                        v[coord] += delta;
                    }
                    idx += 1;
                });
                let out = layer.forward(&x, Mode::Train);
                // Undo the perturbation.
                let mut idx = 0usize;
                layer.visit_params("", &mut |_n, v, _g| {
                    if idx == pi {
                        v[coord] -= delta;
                    }
                    idx += 1;
                });
                projected_loss(&out, &proj)
            };
            let Some(numeric) = robust_numeric_grad(&mut eval, eps) else {
                continue; // kink: one-sided derivatives disagree
            };
            let a = analytic[coord];
            let denom = a.abs().max(numeric.abs()).max(1.0);
            assert!(
                (a - numeric).abs() / denom < tol,
                "param {pname}[{coord}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    // (b) Input gradient.
    let n_coords = grad_in.len();
    let samples = n_coords.min(48);
    let mut x_pert = x.clone();
    for s in 0..samples {
        let coord = s * n_coords / samples;
        let orig = x_pert.as_slice()[coord];
        let mut eval = |delta: f32| -> f64 {
            x_pert.as_mut_slice()[coord] = orig + delta;
            let l = projected_loss(&layer.forward(&x_pert, Mode::Train), &proj);
            x_pert.as_mut_slice()[coord] = orig;
            l
        };
        let Some(numeric) = robust_numeric_grad(&mut eval, eps) else {
            continue; // kink
        };
        let a = grad_in.as_slice()[coord];
        let denom = a.abs().max(numeric.abs()).max(1.0);
        assert!(
            (a - numeric).abs() / denom < tol,
            "input[{coord}]: analytic {a} vs numeric {numeric}"
        );
    }
}
