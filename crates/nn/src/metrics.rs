//! Classification metrics.

use kfac_tensor::Tensor4;

/// Count of samples whose arg-max logit equals the target (Top-1).
#[allow(clippy::needless_range_loop)] // `i` indexes logits rows and targets
pub fn top1_correct(logits: &Tensor4, targets: &[usize]) -> usize {
    let (n, k, h, w) = logits.shape();
    assert_eq!((h, w), (1, 1), "logits must be (N, K, 1, 1)");
    assert_eq!(targets.len(), n);
    let mut correct = 0;
    for i in 0..n {
        let row = &logits.as_slice()[i * k..(i + 1) * k];
        let mut best = 0usize;
        for (c, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = c;
            }
        }
        if best == targets[i] {
            correct += 1;
        }
    }
    correct
}

/// Running accuracy accumulator across batches.
#[derive(Debug, Default, Clone, Copy)]
pub struct Accuracy {
    correct: usize,
    total: usize,
}

impl Accuracy {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one batch of predictions.
    pub fn update(&mut self, logits: &Tensor4, targets: &[usize]) {
        self.correct += top1_correct(logits, targets);
        self.total += targets.len();
    }

    /// Merge counts from another accumulator (cross-rank reduction).
    pub fn merge_counts(&mut self, correct: usize, total: usize) {
        self.correct += correct;
        self.total += total;
    }

    /// Raw `(correct, total)` counts.
    pub fn counts(&self) -> (usize, usize) {
        (self.correct, self.total)
    }

    /// Accuracy in `[0, 1]`; 0 when empty.
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tensor_from;

    #[test]
    fn counts_argmax_matches() {
        let logits = tensor_from(3, 2, 1, 1, &[1.0, 0.0, 0.0, 1.0, 2.0, -1.0]);
        assert_eq!(top1_correct(&logits, &[0, 1, 0]), 3);
        assert_eq!(top1_correct(&logits, &[1, 1, 0]), 2);
    }

    #[test]
    fn accumulator_tracks_rate() {
        let mut acc = Accuracy::new();
        let logits = tensor_from(2, 2, 1, 1, &[1.0, 0.0, 1.0, 0.0]);
        acc.update(&logits, &[0, 1]); // one right, one wrong
        assert_eq!(acc.counts(), (1, 2));
        acc.merge_counts(3, 4);
        assert!((acc.value() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        assert_eq!(Accuracy::new().value(), 0.0);
    }
}
