//! im2col / col2im: convolution as matrix multiplication.
//!
//! Convolutions are lowered to GEMM through the standard im2col transform
//! (the same lowering cuDNN's implicit-GEMM kernels perform on the paper's
//! V100s). Crucially for K-FAC, the im2col *patch matrix* is exactly the
//! expanded-activation matrix of Grosse & Martens' convolutional
//! factorization [33]: each row is one receptive-field patch at one
//! spatial position of one example, so the activation factor is simply
//! `A = XᵀX / rows`.
//!
//! Row order is `(n, oh, ow)`; column order `(c, kh, kw)` — the Conv2d
//! layer and capture code both rely on this layout.

use kfac_tensor::{Matrix, Tensor4};
use rayon::prelude::*;

/// Output spatial size for one dimension.
#[inline]
pub fn conv_out_dim(input: usize, k: usize, stride: usize, pad: usize) -> usize {
    assert!(input + 2 * pad >= k, "kernel larger than padded input");
    (input + 2 * pad - k) / stride + 1
}

/// Expand `input` into patch rows: `(n · oh · ow) × (c · k · k)`.
pub fn im2col(input: &Tensor4, k: usize, stride: usize, pad: usize) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    im2col_into(input, k, stride, pad, &mut out);
    out
}

/// [`im2col`] into a reusable matrix: `out` is reshaped in place (its
/// contents need not be initialized — every patch element, padding
/// included, is written exactly once). The conv hot path calls this on a
/// persistent per-layer buffer so steady-state forward passes allocate
/// nothing.
pub fn im2col_into(input: &Tensor4, k: usize, stride: usize, pad: usize, out: &mut Matrix) {
    let (n, c, h, w) = input.shape();
    let oh = conv_out_dim(h, k, stride, pad);
    let ow = conv_out_dim(w, k, stride, pad);
    let cols = c * k * k;
    let rows = n * oh * ow;
    out.reset_for(rows, cols);

    // Parallelize over samples: each sample writes a disjoint row block.
    let fill_block = |ni: usize, block: &mut [f32]| {
        let sample = input.sample(ni);
        for oy in 0..oh {
            for ox in 0..ow {
                let row = &mut block[(oy * ow + ox) * cols..(oy * ow + ox + 1) * cols];
                let iy0 = (oy * stride) as isize - pad as isize;
                let ix0 = (ox * stride) as isize - pad as isize;
                let mut col = 0usize;
                for ci in 0..c {
                    let plane = &sample[ci * h * w..(ci + 1) * h * w];
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            row[col] =
                                if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                    plane[iy as usize * w + ix as usize]
                                } else {
                                    0.0
                                };
                            col += 1;
                        }
                    }
                }
            }
        }
    };
    if n > 1 && rayon::current_num_threads() > 1 {
        out.as_mut_slice()
            .par_chunks_mut(oh * ow * cols)
            .enumerate()
            .for_each(|(ni, block)| fill_block(ni, block));
    } else {
        // Sequential path: keeps single-thread pools (and the zero-alloc
        // steady state they guarantee) free of scheduler bookkeeping.
        let block_len = (oh * ow * cols).max(1);
        for (ni, block) in out.as_mut_slice().chunks_mut(block_len).enumerate() {
            fill_block(ni, block);
        }
    }
}

/// Scatter-add patch rows back to an input-shaped tensor: the adjoint of
/// [`im2col`], used for the convolution input gradient.
pub fn col2im(
    cols: &Matrix,
    in_shape: (usize, usize, usize, usize),
    k: usize,
    stride: usize,
    pad: usize,
) -> Tensor4 {
    let (n, c, h, w) = in_shape;
    let mut out = Tensor4::zeros(n, c, h, w);
    col2im_into(cols, in_shape, k, stride, pad, &mut out);
    out
}

/// [`col2im`] into a reusable tensor: `out` is reshaped in place and
/// zero-filled before the scatter-add (gaps between receptive fields must
/// read as zero, so a fill is unavoidable — but the allocation isn't).
pub fn col2im_into(
    cols: &Matrix,
    in_shape: (usize, usize, usize, usize),
    k: usize,
    stride: usize,
    pad: usize,
    out: &mut Tensor4,
) {
    let (n, c, h, w) = in_shape;
    let oh = conv_out_dim(h, k, stride, pad);
    let ow = conv_out_dim(w, k, stride, pad);
    assert_eq!(cols.rows(), n * oh * ow, "col2im row count mismatch");
    assert_eq!(cols.cols(), c * k * k, "col2im column count mismatch");

    out.reset_for(n, c, h, w);
    out.as_mut_slice().fill(0.0);
    let ncols = cols.cols();
    // Parallel over samples: each sample's scatter targets are disjoint.
    let scatter_sample = |ni: usize, sample: &mut [f32]| {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = cols.row((ni * oh + oy) * ow + ox);
                debug_assert_eq!(row.len(), ncols);
                let iy0 = (oy * stride) as isize - pad as isize;
                let ix0 = (ox * stride) as isize - pad as isize;
                let mut col = 0usize;
                for ci in 0..c {
                    let plane = &mut sample[ci * h * w..(ci + 1) * h * w];
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                plane[iy as usize * w + ix as usize] += row[col];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    };
    if n > 1 && rayon::current_num_threads() > 1 {
        out.as_mut_slice()
            .par_chunks_mut(c * h * w)
            .enumerate()
            .for_each(|(ni, sample)| scatter_sample(ni, sample));
    } else {
        // Sequential path (see `im2col_into`): no scheduler bookkeeping on
        // single-thread pools.
        let sample_len = (c * h * w).max(1);
        for (ni, sample) in out.as_mut_slice().chunks_mut(sample_len).enumerate() {
            scatter_sample(ni, sample);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfac_tensor::Rng64;

    #[test]
    fn out_dim_formula() {
        assert_eq!(conv_out_dim(8, 3, 1, 1), 8); // same-padding 3x3
        assert_eq!(conv_out_dim(8, 3, 2, 1), 4); // stride-2 downsample
        assert_eq!(conv_out_dim(8, 1, 1, 0), 8); // pointwise
        assert_eq!(conv_out_dim(7, 3, 2, 1), 4);
    }

    #[test]
    fn identity_kernel_extraction() {
        // 1x1 kernel, no padding: rows are just the channel vectors.
        let data: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let t = Tensor4::from_vec(1, 2, 2, 2, data);
        let m = im2col(&t, 1, 1, 0);
        assert_eq!(m.shape(), (4, 2));
        // Position (0,0): channels (0, 4); position (1,1): channels (3, 7).
        assert_eq!(m.row(0), &[0.0, 4.0]);
        assert_eq!(m.row(3), &[3.0, 7.0]);
    }

    #[test]
    fn padding_zero_fills() {
        let t = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let m = im2col(&t, 3, 1, 1);
        assert_eq!(m.shape(), (4, 9));
        // Top-left position: only bottom-right 2x2 of the kernel sees data.
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn conv_as_gemm_matches_direct_convolution() {
        // Direct nested-loop convolution vs im2col+GEMM.
        let mut rng = Rng64::new(1);
        let (n, c, h, w) = (2, 3, 5, 5);
        let (c_out, k, stride, pad) = (4, 3, 2, 1);
        let x = Tensor4::from_vec(
            n,
            c,
            h,
            w,
            (0..n * c * h * w).map(|_| rng.normal_f32()).collect(),
        );
        let weight: Vec<f32> = (0..c_out * c * k * k).map(|_| rng.normal_f32()).collect();

        let oh = conv_out_dim(h, k, stride, pad);
        let ow = conv_out_dim(w, k, stride, pad);

        // GEMM path.
        let cols = im2col(&x, k, stride, pad);
        let wm = Matrix::from_vec(c_out, c * k * k, weight.clone());
        let y = cols.matmul_nt(&wm); // (n*oh*ow) × c_out

        // Direct path.
        for ni in 0..n {
            for co in 0..c_out {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f64;
                        for ci in 0..c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = (oy * stride + ky) as isize - pad as isize;
                                    let ix = (ox * stride + kx) as isize - pad as isize;
                                    if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w
                                    {
                                        let xv = x.at(ni, ci, iy as usize, ix as usize);
                                        let wv = weight[((co * c + ci) * k + ky) * k + kx];
                                        acc += xv as f64 * wv as f64;
                                    }
                                }
                            }
                        }
                        let row = (ni * oh + oy) * ow + ox;
                        assert!(
                            (y[(row, co)] - acc as f32).abs() < 1e-3,
                            "mismatch at n{} c{} y{} x{}",
                            ni,
                            co,
                            oy,
                            ox
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ — the defining adjoint property,
        // which is exactly what the backward pass needs.
        let mut rng = Rng64::new(2);
        let shape = (2, 2, 4, 4);
        let (k, stride, pad) = (3, 1, 1);
        let x = Tensor4::from_vec(
            shape.0,
            shape.1,
            shape.2,
            shape.3,
            (0..2 * 2 * 16).map(|_| rng.normal_f32()).collect(),
        );
        let fx = im2col(&x, k, stride, pad);
        let y = Matrix::from_vec(
            fx.rows(),
            fx.cols(),
            (0..fx.len()).map(|_| rng.normal_f32()).collect(),
        );
        let aty = col2im(&y, shape, k, stride, pad);

        let lhs: f64 = fx
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(aty.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }
}
