//! Shape adapters (Flatten).

use crate::layer::{KfacEligible, Layer, Mode};
use kfac_tensor::Tensor4;

/// `(N, C, H, W) → (N, C·H·W, 1, 1)`: bridges convolutional features to
/// `Linear` heads.
pub struct Flatten {
    in_shape: Option<(usize, usize, usize, usize)>,
}

impl Flatten {
    /// New flatten layer.
    pub fn new() -> Self {
        Flatten { in_shape: None }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        let (n, c, h, w) = input.shape();
        if mode == Mode::Train {
            self.in_shape = Some((n, c, h, w));
        }
        Tensor4::from_vec(n, c * h * w, 1, 1, input.as_slice().to_vec())
    }

    fn backward(&mut self, grad_output: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = self.in_shape.take().expect("backward without forward");
        Tensor4::from_vec(n, c, h, w, grad_output.as_slice().to_vec())
    }

    fn output_shape(&self, input: (usize, usize, usize, usize)) -> (usize, usize, usize, usize) {
        (input.0, input.1 * input.2 * input.3, 1, 1)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {}

    fn set_capture(&mut self, _on: bool) {}

    fn collect_kfac<'a>(&'a mut self, _out: &mut Vec<&'a mut dyn KfacEligible>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tensor_from;

    #[test]
    fn round_trip() {
        let mut f = Flatten::new();
        let x = tensor_from(2, 2, 1, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let y = f.forward(&x, Mode::Train);
        assert_eq!(y.shape(), (2, 4, 1, 1));
        assert_eq!(y.as_slice(), x.as_slice());
        let dx = f.backward(&y);
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(dx.as_slice(), x.as_slice());
    }
}
