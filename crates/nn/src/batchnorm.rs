//! 2-D batch normalization.
//!
//! Standard per-channel batch norm over `(N, H, W)`. Not K-FAC eligible —
//! the paper's implementation "ignores" such layers and lets the wrapped
//! first-order optimizer update them directly (§V), which our `kfac` crate
//! reproduces by simply not collecting them.

use crate::layer::{KfacEligible, Layer, Mode};
use kfac_tensor::Tensor4;

/// `BatchNorm2d(c)` with learnable affine parameters and running
/// statistics for evaluation.
pub struct BatchNorm2d {
    name: String,
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Vec<f32>,
    beta: Vec<f32>,
    grad_gamma: Vec<f32>,
    grad_beta: Vec<f32>,
    running_mean: Vec<f32>,
    /// Biased running variance (documented deviation from PyTorch's
    /// unbiased storage; only affects eval-mode scaling by m/(m−1)).
    running_var: Vec<f32>,
    /// Cached normalized activations from the last training forward.
    xhat: Option<Tensor4>,
    /// Cached per-channel 1/√(var+eps).
    inv_std: Option<Vec<f32>>,
}

impl BatchNorm2d {
    /// Create with `γ = 1`, `β = 0` and fresh running statistics.
    pub fn new(name: impl Into<String>, channels: usize) -> Self {
        BatchNorm2d {
            name: name.into(),
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            grad_gamma: vec![0.0; channels],
            grad_beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            xhat: None,
            inv_std: None,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }
}

impl Layer for BatchNorm2d {
    // Per-channel statistics loops index several buffers by `ci`; the
    // range form mirrors the math.
    #[allow(clippy::needless_range_loop)]
    fn forward(&mut self, input: &Tensor4, mode: Mode) -> Tensor4 {
        let (n, c, h, w) = input.shape();
        assert_eq!(c, self.channels, "channel mismatch in {}", self.name);
        let m = (n * h * w) as f32;
        let mut out = Tensor4::zeros(n, c, h, w);

        match mode {
            Mode::Train => {
                let mut xhat = Tensor4::zeros(n, c, h, w);
                let mut inv_std = vec![0.0f32; c];
                for ci in 0..c {
                    // Batch statistics over (N, H, W).
                    let mut sum = 0.0f64;
                    let mut sumsq = 0.0f64;
                    for ni in 0..n {
                        for &v in input.plane(ni, ci) {
                            sum += v as f64;
                            sumsq += v as f64 * v as f64;
                        }
                    }
                    let mean = (sum / m as f64) as f32;
                    let var = ((sumsq / m as f64) - (mean as f64) * (mean as f64)).max(0.0) as f32;
                    let istd = 1.0 / (var + self.eps).sqrt();
                    inv_std[ci] = istd;

                    self.running_mean[ci] =
                        (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                    self.running_var[ci] =
                        (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;

                    let g = self.gamma[ci];
                    let b = self.beta[ci];
                    for ni in 0..n {
                        let xp = input.plane(ni, ci);
                        let hp: Vec<f32> = xp.iter().map(|&v| (v - mean) * istd).collect();
                        xhat.plane_mut(ni, ci).copy_from_slice(&hp);
                        for (o, &hv) in out.plane_mut(ni, ci).iter_mut().zip(&hp) {
                            *o = g * hv + b;
                        }
                    }
                }
                self.xhat = Some(xhat);
                self.inv_std = Some(inv_std);
            }
            Mode::Eval => {
                for ci in 0..c {
                    let mean = self.running_mean[ci];
                    let istd = 1.0 / (self.running_var[ci] + self.eps).sqrt();
                    let g = self.gamma[ci];
                    let b = self.beta[ci];
                    for ni in 0..n {
                        let xp = input.plane(ni, ci);
                        for (o, &v) in out.plane_mut(ni, ci).iter_mut().zip(xp) {
                            *o = g * (v - mean) * istd + b;
                        }
                    }
                }
            }
        }
        out
    }

    #[allow(clippy::needless_range_loop)]
    fn backward(&mut self, grad_output: &Tensor4) -> Tensor4 {
        let xhat = self.xhat.take().expect("backward without training forward");
        let inv_std = self
            .inv_std
            .take()
            .expect("backward without training forward");
        let (n, c, h, w) = grad_output.shape();
        let m = (n * h * w) as f32;
        let mut dx = Tensor4::zeros(n, c, h, w);

        for ci in 0..c {
            // Accumulate the two channel sums the backward formula needs.
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for ni in 0..n {
                for (&dy, &hv) in grad_output.plane(ni, ci).iter().zip(xhat.plane(ni, ci)) {
                    sum_dy += dy as f64;
                    sum_dy_xhat += dy as f64 * hv as f64;
                }
            }
            self.grad_beta[ci] += sum_dy as f32;
            self.grad_gamma[ci] += sum_dy_xhat as f32;

            // dx = γ·istd · (dy − mean(dy) − x̂ · mean(dy·x̂))
            let g_istd = self.gamma[ci] * inv_std[ci];
            let mean_dy = (sum_dy / m as f64) as f32;
            let mean_dy_xhat = (sum_dy_xhat / m as f64) as f32;
            for ni in 0..n {
                let dyp = grad_output.plane(ni, ci);
                let hp = xhat.plane(ni, ci);
                for ((o, &dy), &hv) in dx.plane_mut(ni, ci).iter_mut().zip(dyp).zip(hp) {
                    *o = g_istd * (dy - mean_dy - hv * mean_dy_xhat);
                }
            }
        }
        dx
    }

    fn output_shape(&self, input: (usize, usize, usize, usize)) -> (usize, usize, usize, usize) {
        input
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        let gname = format!("{prefix}{}.gamma", self.name);
        f(&gname, &mut self.gamma, &mut self.grad_gamma);
        let bname = format!("{prefix}{}.beta", self.name);
        f(&bname, &mut self.beta, &mut self.grad_beta);
    }

    fn set_capture(&mut self, _on: bool) {
        // Not K-FAC eligible; nothing to capture.
    }

    fn collect_kfac<'a>(&'a mut self, _out: &mut Vec<&'a mut dyn KfacEligible>) {
        // BatchNorm is updated by the plain optimizer (§V).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{finite_diff_check, random_tensor};
    use kfac_tensor::Rng64;

    #[test]
    fn train_output_is_normalized() {
        let mut rng = Rng64::new(1);
        let mut bn = BatchNorm2d::new("bn", 3);
        let x = random_tensor((4, 3, 5, 5), &mut rng);
        let y = bn.forward(&x, Mode::Train);
        // Per-channel mean ≈ 0, var ≈ 1 (γ=1, β=0).
        for ci in 0..3 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                vals.extend_from_slice(y.plane(ni, ci));
            }
            let m: f64 = vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len() as f64;
            let v: f64 =
                vals.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / vals.len() as f64;
            assert!(m.abs() < 1e-4, "mean {m}");
            assert!((v - 1.0).abs() < 1e-2, "var {v}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = Rng64::new(2);
        let mut bn = BatchNorm2d::new("bn", 2);
        // Warm running stats with several training passes.
        for _ in 0..200 {
            let x = random_tensor((8, 2, 4, 4), &mut rng);
            let _ = bn.forward(&x, Mode::Train);
        }
        // Standard-normal input ⇒ running stats near (0, 1) ⇒ eval ≈ identity.
        let x = random_tensor((4, 2, 4, 4), &mut rng);
        let y = bn.forward(&x, Mode::Eval);
        let mut max_diff = 0.0f32;
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            max_diff = max_diff.max((a - b).abs());
        }
        assert!(max_diff < 0.35, "eval far from identity: {max_diff}");
    }

    #[test]
    fn gradient_check() {
        let mut rng = Rng64::new(3);
        let bn = BatchNorm2d::new("bn", 3);
        finite_diff_check(Box::new(bn), (4, 3, 3, 3), 5e-2, &mut rng);
    }

    #[test]
    fn gamma_beta_gradients_known_case() {
        // With dy = 1 everywhere: dβ = m, dγ = Σ x̂ ≈ 0.
        let mut rng = Rng64::new(4);
        let mut bn = BatchNorm2d::new("bn", 1);
        let x = random_tensor((2, 1, 3, 3), &mut rng);
        let _ = bn.forward(&x, Mode::Train);
        let dy = Tensor4::from_vec(2, 1, 3, 3, vec![1.0; 18]);
        let _ = bn.backward(&dy);
        assert!((bn.grad_beta[0] - 18.0).abs() < 1e-4);
        assert!(bn.grad_gamma[0].abs() < 1e-3);
    }

    #[test]
    fn not_kfac_eligible() {
        let mut bn = BatchNorm2d::new("bn", 4);
        let mut v = Vec::new();
        bn.collect_kfac(&mut v);
        assert!(v.is_empty());
    }
}
