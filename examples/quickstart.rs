//! Quickstart: the Rust analogue of the paper's Listing 1.
//!
//! Trains a small CNN on a synthetic 10-class image task with the K-FAC
//! preconditioner in front of momentum SGD, on a single worker. The
//! structure mirrors the paper's PyTorch example line by line: build the
//! model and optimizer, wrap a `Kfac` preconditioner, then per iteration
//! run forward/backward, synchronize gradients, `preconditioner.step()`,
//! `optimizer.step()`.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use kfac::{Kfac, KfacConfig};
use kfac_collectives::LocalComm;
use kfac_data::{batch_of, synthetic_cifar, Dataset, ShardedSampler};
use kfac_nn::{layer::Mode, CrossEntropyLoss, Layer};
use kfac_optim::{LrSchedule, Optimizer, Sgd};
use kfac_suite::harness::trainer::allreduce_gradients;
use kfac_tensor::Rng64;

fn main() {
    // Data: a CIFAR-like synthetic task (10 classes, 3×10×10 images).
    let (train_ds, val_ds) = synthetic_cifar(10, 1024, 256, 7);

    // Model: a small CIFAR-style ResNet.
    let mut model = {
        let mut rng = Rng64::new(42);
        kfac_suite::nn::resnet::resnet_cifar(1, 6, 10, 3, &mut rng)
    };
    println!("model parameters: {}", model.num_params());

    // optimizer = optim.SGD(model.parameters(), ...)
    let mut optimizer = Sgd::paper_default(5e-4);
    // preconditioner = KFAC(model, ...)
    let mut preconditioner = Kfac::new(
        &mut model,
        KfacConfig {
            update_freq: 10,
            damping: 0.03,
            ..KfacConfig::default()
        },
    );
    let criterion = CrossEntropyLoss::new();
    let comm = LocalComm::new(); // single worker; swap in ThreadComm for many

    let epochs = 12;
    let schedule = LrSchedule::paper_steps(0.1, vec![6, 9]);
    let sampler = ShardedSampler::new(train_ds.len(), 1, 0, 32, 1);

    for epoch in 0..epochs {
        preconditioner.set_epoch(epoch);
        let mut loss_sum = 0.0;
        let batches = sampler.epoch_batches(epoch);
        let iters = batches.len();
        for (bi, indices) in batches.into_iter().enumerate() {
            let lr = schedule.lr_at(epoch as f32 + bi as f32 / iters as f32);
            let (data, target) = batch_of(&train_ds, &indices, epoch as u64 + 1);

            // optimizer.zero_grad(); output = model(data); loss.backward()
            model.zero_grad();
            model.set_capture(preconditioner.needs_capture());
            let output = model.forward(&data, Mode::Train);
            let (loss, grad) = criterion.forward(&output, &target);
            let _ = model.backward(&grad);
            loss_sum += loss as f64;

            // optimizer.synchronize(); preconditioner.step(); optimizer.step()
            allreduce_gradients(&mut model, &comm);
            preconditioner.step(&mut model, &comm, lr);
            optimizer.step(&mut model, lr);
        }

        // Validation accuracy.
        let mut correct = 0usize;
        let mut total = 0usize;
        let all: Vec<usize> = (0..val_ds.len()).collect();
        for chunk in all.chunks(64) {
            let (x, labels) = batch_of(&val_ds, chunk, 0);
            let out = model.forward(&x, Mode::Eval);
            correct += kfac_suite::nn::top1_correct(&out, &labels);
            total += labels.len();
        }
        println!(
            "epoch {epoch:2}  train loss {:.4}  val acc {:.1}%",
            loss_sum / iters as f64,
            100.0 * correct as f64 / total as f64
        );
    }
}
