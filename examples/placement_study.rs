//! Placement study: the paper's round-robin factor assignment vs the
//! size-balanced LPT policy it proposes as future work (§VI-C4).
//!
//! Uses the real full-size ResNet factor inventories and the real
//! assignment code to show (a) the Table VI imbalance — fastest workers
//! speeding up ~6–8× from 16→64 GPUs while the slowest barely move — and
//! (b) how much of the eig-stage makespan the LPT heuristic recovers.
//!
//! Run with:
//! ```text
//! cargo run --release --example placement_study
//! ```

use kfac_suite::kfac::distribution::{assign_factors, factor_descs, per_rank_cost};
use kfac_suite::kfac::PlacementPolicy;
use kfac_suite::nn::arch::{resnet101, resnet152, resnet50};

fn main() {
    for arch in [resnet50(), resnet101(), resnet152()] {
        let layer_dims: Vec<(usize, usize)> = arch.layers.iter().map(|l| l.factor_dims()).collect();
        let factors = factor_descs(&layer_dims);
        let total_cost: u64 = factors.iter().map(|f| f.eig_cost()).sum();
        let biggest = factors.iter().map(|f| f.dim).max().unwrap_or(0);

        println!("==== {} ====", arch.name);
        println!(
            "{} factors across {} layers; largest dimension {}; total eig cost {:.2e} (dim³ units)",
            factors.len(),
            layer_dims.len(),
            biggest,
            total_cost as f64
        );
        println!(
            "{:>5} | {:>22} | {:>22} | {:>8}",
            "GPUs", "round-robin min/max load", "LPT min/max load", "LPT gain"
        );

        let mut base_rr: Option<(u64, u64)> = None;
        for gpus in [16usize, 32, 64, 128, 256] {
            let rr = assign_factors(PlacementPolicy::RoundRobin, &factors, gpus);
            let lpt = assign_factors(PlacementPolicy::SizeBalanced, &factors, gpus);
            let rr_loads = per_rank_cost(&factors, &rr, gpus);
            let lpt_loads = per_rank_cost(&factors, &lpt, gpus);
            let busy_min =
                |loads: &[u64]| loads.iter().cloned().filter(|&l| l > 0).min().unwrap_or(0);
            let rr_minmax = (busy_min(&rr_loads), *rr_loads.iter().max().unwrap());
            let lpt_minmax = (busy_min(&lpt_loads), *lpt_loads.iter().max().unwrap());
            if base_rr.is_none() {
                base_rr = Some(rr_minmax);
            }
            let gain = 1.0 - lpt_minmax.1 as f64 / rr_minmax.1 as f64;
            println!(
                "{:>5} | {:>10.2e} {:>10.2e} | {:>10.2e} {:>10.2e} | {:>7.1}%",
                gpus,
                rr_minmax.0 as f64,
                rr_minmax.1 as f64,
                lpt_minmax.0 as f64,
                lpt_minmax.1 as f64,
                gain * 100.0
            );
        }

        // Table VI view: speedups of the fastest/slowest worker vs 16.
        let (min16, max16) = base_rr.expect("16-GPU row");
        println!("Table VI view (vs 16 GPUs, round-robin):");
        for gpus in [32usize, 64] {
            let rr = assign_factors(PlacementPolicy::RoundRobin, &factors, gpus);
            let loads = per_rank_cost(&factors, &rr, gpus);
            let mn = loads.iter().cloned().filter(|&l| l > 0).min().unwrap();
            let mx = *loads.iter().max().unwrap();
            println!(
                "  {gpus:>3} GPUs: fastest-worker speedup {:.2}x, slowest-worker speedup {:.2}x",
                min16 as f64 / mn as f64,
                max16 as f64 / mx as f64
            );
        }
        println!();
    }

    println!("The slowest worker is pinned by the single largest factor — no");
    println!("placement can split one eigendecomposition — which is why the paper");
    println!("proposes (and Table VI′ evaluates) size-aware placement only as a");
    println!("partial fix.");
}
