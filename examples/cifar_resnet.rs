//! CIFAR-style distributed comparison: K-FAC (half budget) vs SGD.
//!
//! Reproduces the flavour of the paper's Fig. 4 at example scale: a
//! CIFAR-like ResNet trained across several thread-ranks with the full
//! distributed stack (thread-rank collectives, fused gradient allreduce,
//! round-robin factor distribution), with K-FAC given half of SGD's epoch
//! budget — the paper's 100 vs 200 epoch protocol.
//!
//! Run with (worker count optional, default 4):
//! ```text
//! cargo run --release --example cifar_resnet -- 4
//! ```

use kfac::KfacConfig;
use kfac_optim::LrSchedule;
use kfac_suite::harness::presets::CifarSetup;
use kfac_suite::harness::presets::Scale;
use kfac_suite::harness::trainer::{train, TrainConfig};

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let setup = CifarSetup::new(Scale::Quick);
    println!(
        "workers: {ranks}  global batch: {}  lr: {} (linear scaling rule)",
        ranks * setup.base_batch,
        setup.base_lr * ranks as f32
    );

    // SGD at the full budget.
    let sgd_cfg = TrainConfig::new(
        ranks,
        setup.base_batch,
        setup.sgd_epochs,
        LrSchedule {
            warmup_epochs: setup.warmup(setup.sgd_epochs),
            ..LrSchedule::paper_steps(setup.base_lr, setup.sgd_decay_epochs())
        }
        .scale_for_workers(ranks),
    );
    println!("-- SGD for {} epochs --", setup.sgd_epochs);
    let sgd = train(|s| setup.model(s), &setup.train, &setup.val, &sgd_cfg);
    for e in &sgd.epochs {
        println!(
            "SGD   epoch {:3}  loss {:.4}  val {:.1}%",
            e.epoch,
            e.train_loss,
            e.val_acc * 100.0
        );
    }

    // K-FAC at half the budget.
    let kfac_cfg = TrainConfig::new(
        ranks,
        setup.base_batch,
        setup.kfac_epochs,
        LrSchedule {
            warmup_epochs: setup.warmup(setup.kfac_epochs),
            ..LrSchedule::paper_steps(setup.base_lr, setup.kfac_decay_epochs())
        }
        .scale_for_workers(ranks),
    )
    .with_kfac(KfacConfig {
        update_freq: 10,
        damping: 0.03,
        ..KfacConfig::default()
    });
    println!("-- K-FAC for {} epochs --", setup.kfac_epochs);
    let kfac = train(|s| setup.model(s), &setup.train, &setup.val, &kfac_cfg);
    for e in &kfac.epochs {
        println!(
            "K-FAC epoch {:3}  loss {:.4}  val {:.1}%",
            e.epoch,
            e.train_loss,
            e.val_acc * 100.0
        );
    }

    println!();
    println!(
        "final: SGD {:.1}% in {} epochs vs K-FAC {:.1}% in {} epochs",
        sgd.final_val_acc * 100.0,
        setup.sgd_epochs,
        kfac.final_val_acc * 100.0,
        setup.kfac_epochs
    );
    println!(
        "communication (rank 0): SGD grad {} MB | K-FAC grad {} MB + factors {} MB + eig {} MB",
        sgd.traffic.gradient_bytes / (1 << 20),
        kfac.traffic.gradient_bytes / (1 << 20),
        kfac.traffic.factor_bytes / (1 << 20),
        kfac.traffic.eigen_bytes / (1 << 20),
    );
    if let Some(stats) = &kfac.stage_stats {
        println!(
            "K-FAC stages: factor comp {:.1} ms/update, eig comp {:.1} ms/update over {} updates",
            stats.factor_comp_ms(),
            stats.eig_comp_ms(),
            stats.eig_updates
        );
    }
}
