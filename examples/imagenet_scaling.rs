//! Scaling study on the calibrated cluster model: where does distributed
//! K-FAC beat SGD, and where does it stop?
//!
//! Walks the paper's 16–256 GPU sweep (Figs. 7–9, Table IV) for all three
//! ResNet depths, printing per-stage iteration breakdowns so the
//! mechanics are visible: the eigendecomposition makespan that stops
//! shrinking, the factor computation that no extra GPU can help with, and
//! the amortization that makes K-FAC-opt cheap anyway.
//!
//! Run with:
//! ```text
//! cargo run --release --example imagenet_scaling
//! ```

use kfac_suite::cluster::{
    paper_update_freq, scaling_sweep, ClusterSpec, IterationModel, KfacRunConfig, ModelProfile,
    TrainingBudget,
};
use kfac_suite::nn::arch::{resnet101, resnet152, resnet50};

fn main() {
    let budget = TrainingBudget::default();

    for arch in [resnet50(), resnet101(), resnet152()] {
        println!(
            "==== {} ({:.1}M params) ====",
            arch.name,
            arch.total_params() as f64 / 1e6
        );
        println!(
            "{:>5} | {:>9} {:>9} {:>9} | {:>8} | per-iteration opt stages (ms)",
            "GPUs", "SGD", "K-FAC-lw", "K-FAC-opt", "opt gain"
        );

        let points = scaling_sweep(&arch, budget);
        for p in &points {
            let model = IterationModel::new(
                ModelProfile::from_arch(&arch),
                ClusterSpec::frontera(p.gpus),
                budget.local_batch,
            );
            let stages =
                model.kfac_opt_iteration(KfacRunConfig::with_freq(paper_update_freq(p.gpus)));
            println!(
                "{:>5} | {:>8.1}m {:>8.1}m {:>8.1}m | {:>7.1}% | fwd+bwd {:.0} comm {:.0} factors {:.1} eig {:.1} precond {:.1}",
                p.gpus,
                p.sgd_s / 60.0,
                p.lw_s / 60.0,
                p.opt_s / 60.0,
                p.opt_improvement() * 100.0,
                (stages.fwd + stages.bwd) * 1e3,
                stages.grad_comm * 1e3,
                (stages.factor_comp + stages.factor_comm) * 1e3,
                (stages.eig_comp + stages.eig_comm) * 1e3,
                stages.precond * 1e3,
            );
        }
        println!();
    }

    println!("reading guide:");
    println!(" * ResNet-50: K-FAC-opt wins everywhere (paper: 17.7–25.2%).");
    println!(" * ResNet-101: smaller but consistent wins (paper: 9.7–19.5%).");
    println!(" * ResNet-152: the win shrinks with scale and flips at 256 GPUs");
    println!("   (paper: −11.1%) — the factor-computation and preconditioning");
    println!("   overheads grow super-linearly with depth while the 55-vs-90");
    println!("   epoch advantage is fixed.");
}
