//! `kfac-suite`: umbrella crate for the `kfac-rs` reproduction of
//! *Convolutional Neural Network Training with Distributed K-FAC*
//! (Pauloski et al., SC 2020).
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). The actual functionality lives
//! in the member crates, re-exported here for convenience:
//!
//! * [`tensor`] — dense linear algebra (GEMM, symmetric eigendecomposition,
//!   Cholesky, Kronecker utilities).
//! * [`collectives`] — Horovod-like collective communication.
//! * [`nn`] — neural-network layers, ResNet builders and K-FAC capture hooks.
//! * [`data`] — synthetic CIFAR-10/ImageNet-like datasets.
//! * [`optim`] — SGD/Adam/LARS and learning-rate schedules.
//! * [`kfac`] — the distributed K-FAC preconditioner (the paper's contribution).
//! * [`cluster`] — calibrated analytic cluster/scaling simulator.
//! * [`harness`] — distributed trainer and per-table/figure experiment drivers.

pub use kfac;
pub use kfac_cluster as cluster;
pub use kfac_collectives as collectives;
pub use kfac_data as data;
pub use kfac_harness as harness;
pub use kfac_nn as nn;
pub use kfac_optim as optim;
pub use kfac_tensor as tensor;
