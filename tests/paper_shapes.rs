//! Cross-crate shape tests: the qualitative claims of the paper's
//! evaluation, checked end-to-end through the public APIs (architecture
//! tables → profiles → calibrated projections → placement analysis).

use kfac_suite::cluster::{
    paper_update_freq, scaling_sweep, time_to_solution, ClusterSpec, IterationModel, KfacRunConfig,
    ModelProfile, TrainingBudget,
};
use kfac_suite::kfac::PlacementPolicy;
use kfac_suite::nn::arch::{resnet101, resnet152, resnet50};

#[test]
fn table_iv_improvement_bands() {
    // Paper Table IV: R50 17.7–25.2%, R101 9.7–19.5%, R152 −11.1–8.2%.
    // Ours must land in comparable bands: R50 solidly double-digit
    // positive everywhere; R152 crossing zero at 256.
    let b = TrainingBudget::default();
    for p in scaling_sweep(&resnet50(), b) {
        let i = p.opt_improvement();
        assert!((0.10..0.40).contains(&i), "R50@{}: {i}", p.gpus);
    }
    for p in scaling_sweep(&resnet101(), b) {
        let i = p.opt_improvement();
        assert!((0.03..0.30).contains(&i), "R101@{}: {i}", p.gpus);
    }
    let pts = scaling_sweep(&resnet152(), b);
    assert!(
        pts.last().expect("sweep").opt_improvement() < 0.03,
        "R152 advantage must (nearly) vanish at 256 GPUs"
    );
    assert!(
        pts[0].opt_improvement() > 0.03,
        "R152 advantage positive at 16 GPUs"
    );
}

#[test]
fn fig7_strategy_ordering_and_epoch_budgets() {
    let b = TrainingBudget::default();
    for gpus in [16usize, 64, 256] {
        let p = time_to_solution(&resnet50(), gpus, b);
        assert!(
            p.opt_s < p.lw_s && p.lw_s < p.sgd_s,
            "@{gpus}: opt {} lw {} sgd {}",
            p.opt_s,
            p.lw_s,
            p.sgd_s
        );
    }
}

#[test]
fn table_v_factor_stage_is_not_distributable() {
    // Factor computation time must be identical at 16 and 256 GPUs while
    // the eig stage must shrink (sublinearly).
    let profile = ModelProfile::from_arch(&resnet101());
    let at = |gpus| IterationModel::new(profile.clone(), ClusterSpec::frontera(gpus), 32);
    let (fc16, _) = at(16).factor_stage_s();
    let (fc256, _) = at(256).factor_stage_s();
    assert_eq!(fc16, fc256);
    let (ec16, _) = at(16).eig_stage_s(PlacementPolicy::RoundRobin);
    let (ec256, _) = at(256).eig_stage_s(PlacementPolicy::RoundRobin);
    assert!(ec256 < ec16);
    assert!(ec16 / ec256 < 16.0, "nowhere near linear speedup");
}

#[test]
fn table_vi_imbalance_and_lpt_fix() {
    // Round-robin: the slowest worker barely speeds up from 16→64 GPUs;
    // LPT (the paper's proposed fix) must not be worse than round-robin.
    for arch in [resnet50(), resnet152()] {
        let profile = ModelProfile::from_arch(&arch);
        let worker_times = |gpus: usize, policy| {
            IterationModel::new(profile.clone(), ClusterSpec::frontera(gpus), 32)
                .eig_worker_times_s(policy)
        };
        let t16 = worker_times(16, PlacementPolicy::RoundRobin);
        let t64 = worker_times(64, PlacementPolicy::RoundRobin);
        let slowest16 = t16.iter().cloned().fold(0.0, f64::max);
        let slowest64 = t64.iter().cloned().fold(0.0, f64::max);
        assert!(
            slowest16 / slowest64 < 2.5,
            "{}: slowest-worker speedup {:.2} should be small",
            arch.name,
            slowest16 / slowest64
        );

        let lpt64 = worker_times(64, PlacementPolicy::SizeBalanced);
        let lpt_makespan = lpt64.iter().cloned().fold(0.0, f64::max);
        assert!(lpt_makespan <= slowest64 + 1e-12);
    }
}

#[test]
fn update_interval_schedule_keeps_updates_per_epoch_constant() {
    // The paper scales the interval so K-FAC updates per epoch stay
    // fixed: interval × gpus = const, and iterations/epoch × gpus = const.
    let b = TrainingBudget::default();
    let base = paper_update_freq(16) * 16;
    for gpus in [32usize, 64, 128, 256] {
        assert_eq!(paper_update_freq(gpus) * gpus, base);
        let iters = b.dataset / (gpus * b.local_batch);
        let updates_per_epoch = iters as f64 / paper_update_freq(gpus) as f64;
        let base_updates = (b.dataset / (16 * b.local_batch)) as f64 / paper_update_freq(16) as f64;
        assert!((updates_per_epoch - base_updates).abs() / base_updates < 0.05);
    }
}

#[test]
fn fig10_superlinear_factor_growth() {
    let at = |arch: &kfac_suite::nn::arch::ModelArch| {
        IterationModel::new(ModelProfile::from_arch(arch), ClusterSpec::frontera(16), 32)
            .factor_stage_s()
            .0
    };
    let (t50, t101, t152) = (at(&resnet50()), at(&resnet101()), at(&resnet152()));
    let p50 = resnet50().total_params() as f64;
    let p152 = resnet152().total_params() as f64;
    assert!(t50 < t101 && t101 < t152);
    assert!(
        t152 / t50 > p152 / p50,
        "factor time must grow faster than parameters: {} vs {}",
        t152 / t50,
        p152 / p50
    );
}

#[test]
fn kfac_opt_per_iteration_overhead_fits_epoch_advantage_for_resnet50() {
    // The economics of the whole paper: K-FAC-opt's per-iteration
    // overhead must stay under the 90/55 epoch ratio for ResNet-50 at
    // every scale, else the 55-epoch budget wins nothing.
    let profile = ModelProfile::from_arch(&resnet50());
    for gpus in [16usize, 32, 64, 128, 256] {
        let m = IterationModel::new(profile.clone(), ClusterSpec::frontera(gpus), 32);
        let cfg = KfacRunConfig::with_freq(paper_update_freq(gpus));
        let ratio = m.kfac_opt_iteration(cfg).total() / m.sgd_iteration().total();
        assert!(
            ratio < 90.0 / 55.0,
            "@{gpus}: iteration ratio {ratio:.3} exceeds the epoch advantage"
        );
    }
}
