//! End-to-end integration tests spanning every crate: data → model →
//! distributed collectives → K-FAC preconditioner → optimizer → metrics.

use kfac_suite::data::{synthetic_cifar, Dataset};
use kfac_suite::harness::trainer::{train, TrainConfig};
use kfac_suite::kfac::{DistStrategy, KfacConfig};
use kfac_suite::nn::resnet::resnet_cifar;
use kfac_suite::nn::Sequential;
use kfac_suite::optim::LrSchedule;
use kfac_suite::tensor::Rng64;

fn build(seed: u64) -> Sequential {
    let mut rng = Rng64::new(seed);
    resnet_cifar(1, 4, 10, 3, &mut rng)
}

fn smoke_cfg(ranks: usize, epochs: usize) -> TrainConfig {
    TrainConfig::new(
        ranks,
        16,
        epochs,
        LrSchedule {
            warmup_epochs: 1.0,
            ..LrSchedule::paper_steps(0.05 * ranks as f32, vec![epochs * 3 / 4])
        },
    )
}

#[test]
fn distributed_kfac_training_learns() {
    let (train_ds, val_ds) = synthetic_cifar(8, 512, 128, 11);
    let cfg = smoke_cfg(2, 5).with_kfac(KfacConfig {
        update_freq: 10,
        damping: 0.1,
        kl_clip: Some(0.01),
        ..KfacConfig::default()
    });
    let result = train(build, &train_ds, &val_ds, &cfg);
    assert!(
        result.best_val_acc > 0.3,
        "2-rank K-FAC should beat 3× chance on 10 classes: {}",
        result.best_val_acc
    );
    // All three K-FAC traffic classes flowed.
    assert!(result.traffic.gradient_bytes > 0);
    assert!(result.traffic.factor_bytes > 0);
    assert!(result.traffic.eigen_bytes > 0);
}

#[test]
fn kfac_converges_at_least_as_fast_as_sgd() {
    // The paper's core claim at mini scale: at an equal (short) epoch
    // budget, K-FAC's validation accuracy is at least SGD's minus noise.
    let (train_ds, val_ds) = synthetic_cifar(8, 512, 128, 13);
    let epochs = 5;
    let sgd = train(build, &train_ds, &val_ds, &smoke_cfg(2, epochs));
    let kfac = train(
        build,
        &train_ds,
        &val_ds,
        &smoke_cfg(2, epochs).with_kfac(KfacConfig {
            update_freq: 10,
            damping: 0.1,
            kl_clip: Some(0.01),
            ..KfacConfig::default()
        }),
    );
    assert!(
        kfac.best_val_acc >= sgd.best_val_acc - 0.08,
        "kfac {} vs sgd {}",
        kfac.best_val_acc,
        sgd.best_val_acc
    );
}

#[test]
fn lw_and_opt_strategies_produce_identical_trajectories() {
    // §VI-C3: the two distribution strategies compute the same update —
    // verified here at the full-training-loop level across 3 ranks.
    let (train_ds, val_ds) = synthetic_cifar(8, 384, 96, 17);
    let run = |strategy: DistStrategy| {
        let cfg = smoke_cfg(3, 3).with_kfac(KfacConfig {
            update_freq: 4,
            damping: 0.1,
            strategy,
            ..KfacConfig::default()
        });
        train(build, &train_ds, &val_ds, &cfg)
    };
    let opt = run(DistStrategy::Opt);
    let lw = run(DistStrategy::Lw);
    for (a, b) in opt.epochs.iter().zip(&lw.epochs) {
        assert!(
            (a.train_loss - b.train_loss).abs() < 2e-3,
            "epoch {} loss diverged: {} vs {}",
            a.epoch,
            a.train_loss,
            b.train_loss
        );
        assert!(
            (a.val_acc - b.val_acc).abs() < 0.05,
            "epoch {} val diverged: {} vs {}",
            a.epoch,
            a.val_acc,
            b.val_acc
        );
    }
}

#[test]
fn rank_counts_with_same_global_batch_behave_statistically_alike() {
    // 1×32 and 2×16 share the global batch and LR; trajectories differ
    // only through data sharding, so both must learn to similar levels.
    let (train_ds, val_ds) = synthetic_cifar(8, 512, 128, 19);
    let mut one = smoke_cfg(1, 5);
    one.local_batch = 32;
    let mut two = smoke_cfg(2, 5);
    two.local_batch = 16;
    two.lr = one.lr.clone();
    let a = train(build, &train_ds, &val_ds, &one);
    let b = train(build, &train_ds, &val_ds, &two);
    assert!(
        (a.best_val_acc - b.best_val_acc).abs() < 0.2,
        "1-rank {} vs 2-rank {}",
        a.best_val_acc,
        b.best_val_acc
    );
}

#[test]
fn validation_is_exactly_sharded() {
    // The sharded validator must score the same model identically for
    // any rank count: run 1 rank and 4 ranks with 0 training epochs…
    // (0 epochs isn't allowed by the trainer loop; instead compare after
    // the same single-epoch deterministic run).
    let (train_ds, val_ds) = synthetic_cifar(8, 256, 100, 23);
    let a = train(build, &train_ds, &val_ds, &smoke_cfg(1, 1));
    assert_eq!(a.epochs.len(), 1);
    assert!(val_ds.len() == 100);
    // Accuracy is a multiple of 1/100 — exact shard accounting.
    let acc = a.final_val_acc * 100.0;
    assert!((acc - acc.round()).abs() < 1e-9, "acc {acc} not on grid");
}
