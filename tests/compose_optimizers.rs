//! The paper designs K-FAC "to act as a gradient preconditioner such that
//! K-FAC can be used in-place with any standard optimizer, such as Adam,
//! LARS, or SGD" (§IV). These tests verify the composition claim: the
//! same preconditioner instance drives all three optimizers through the
//! Listing-1 call pattern.

use kfac_suite::collectives::LocalComm;
use kfac_suite::data::{batch_of, synthetic_cifar, ShardedSampler};
use kfac_suite::kfac::{Kfac, KfacConfig};
use kfac_suite::nn::{layer::Mode, CrossEntropyLoss, Layer, Sequential};
use kfac_suite::optim::{Adam, Lars, Optimizer, Sgd};
use kfac_suite::tensor::Rng64;

fn build() -> Sequential {
    let mut rng = Rng64::new(77);
    kfac_suite::nn::resnet::resnet_cifar(1, 4, 10, 3, &mut rng)
}

/// Run a short K-FAC-preconditioned loop with the given optimizer and
/// return (first-epoch loss, last-epoch loss).
fn run_with(mut optimizer: Box<dyn Optimizer>, lr: f32) -> (f64, f64) {
    let (train_ds, _) = synthetic_cifar(8, 256, 64, 31);
    let mut model = build();
    let comm = LocalComm::new();
    let mut kfac = Kfac::new(
        &mut model,
        KfacConfig {
            update_freq: 5,
            damping: 0.1,
            kl_clip: Some(0.01),
            ..KfacConfig::default()
        },
    );
    let criterion = CrossEntropyLoss::new();
    let sampler = ShardedSampler::new(256, 1, 0, 16, 3);

    let mut first = None;
    let mut last = 0.0f64;
    for epoch in 0..10 {
        kfac.set_epoch(epoch);
        let mut sum = 0.0;
        let batches = sampler.epoch_batches(epoch);
        let n = batches.len();
        for indices in batches {
            let (x, labels) = batch_of(&train_ds, &indices, epoch as u64);
            model.zero_grad();
            model.set_capture(kfac.needs_capture());
            let out = model.forward(&x, Mode::Train);
            let (loss, grad) = criterion.forward(&out, &labels);
            sum += loss as f64;
            let _ = model.backward(&grad);
            kfac.step(&mut model, &comm, lr);
            optimizer.step(&mut model, lr);
        }
        last = sum / n as f64;
        first.get_or_insert(last);
    }
    (first.expect("ran"), last)
}

#[test]
fn kfac_composes_with_sgd() {
    let (first, last) = run_with(Box::new(Sgd::paper_default(0.0)), 0.1);
    assert!(last < 0.88 * first, "SGD+K-FAC: {first} → {last}");
}

#[test]
fn kfac_composes_with_adam() {
    let (first, last) = run_with(Box::new(Adam::new(0.0)), 0.003);
    assert!(last < 0.9 * first, "Adam+K-FAC: {first} → {last}");
}

#[test]
fn kfac_composes_with_lars() {
    let (first, last) = run_with(Box::new(Lars::new(0.9, 0.0, 0.005)), 1.0);
    assert!(last < 0.9 * first, "LARS+K-FAC: {first} → {last}");
}
